//! Element-wise activation layers.

use crate::Layer;
use saps_tensor::Tensor;

/// Rectified linear unit: `y = max(x, 0)`.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.cached_input = Some(input.clone());
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward called without a preceding forward");
        assert_eq!(input.shape(), grad_out.shape());
        let data = input
            .data()
            .iter()
            .zip(grad_out.data())
            .map(|(&x, &g)| if x > 0.0 { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_out.shape())
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}
}

/// Hyperbolic tangent activation.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a Tanh layer.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = input.map(f32::tanh);
        self.cached_output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let out = self
            .cached_output
            .take()
            .expect("backward called without a preceding forward");
        let data = out
            .data()
            .iter()
            .zip(grad_out.data())
            .map(|(&y, &g)| g * (1.0 - y * y))
            .collect();
        Tensor::from_vec(data, grad_out.shape())
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let g = r.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn tanh_gradient_check() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![0.3, -0.7], &[2]);
        let _ = t.forward(&x, true);
        let g = t.backward(&Tensor::from_vec(vec![1.0, 1.0], &[2]));
        let eps = 1e-3f32;
        for k in 0..2 {
            let fp = (x.data()[k] + eps).tanh();
            let fm = (x.data()[k] - eps).tanh();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((g.data()[k] - numeric).abs() < 1e-4);
        }
    }

    #[test]
    fn activations_have_no_params() {
        let r = Relu::new();
        assert_eq!(r.param_count(), 0);
        assert!(r.grads().is_empty());
    }
}
