//! Train-and-serve integration: a cluster-driven SAPS-PSGD run exports
//! its consensus each round, the serving fleet hot-swaps it while
//! answering a steady request stream, and every hot-swap guarantee is
//! checked under live training churn.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_cluster::{cluster_registry, WireTap};
use saps_core::{checkpoint, AlgorithmSpec, Experiment};
use saps_data::SyntheticSpec;
use saps_nn::zoo;
use saps_serve::{ReplicaNode, ServeCluster};
use std::cell::RefCell;
use std::rc::Rc;

const DIMS: [usize; 3] = [16, 16, 4];

fn fleet(n: u32, ckpt: &[u8]) -> Vec<ReplicaNode> {
    (0..n)
        .map(|id| {
            let mut rng = StdRng::seed_from_u64(77);
            ReplicaNode::new(id, zoo::mlp(&DIMS, &mut rng), ckpt, 8).unwrap()
        })
        .collect()
}

#[test]
fn hot_swap_under_training_churn() {
    let ds = SyntheticSpec::tiny().samples(400).generate(1);
    let (train, val) = ds.split(0.25, 0);

    // Boot the fleet from an untrained checkpoint (version 0, round 0).
    let mut rng = StdRng::seed_from_u64(77);
    let boot = checkpoint::encode(&zoo::mlp(&DIMS, &mut rng).flat_params(), 0);
    let serve = Rc::new(RefCell::new(
        ServeCluster::loopback(fleet(2, &boot)).unwrap(),
    ));

    // Every training round: export the cluster consensus, announce it,
    // keep a request stream flowing while the swap lands.
    let hook_fleet = Rc::clone(&serve);
    let rounds_seen = Rc::new(RefCell::new(Vec::<u64>::new()));
    let hook_rounds = Rc::clone(&rounds_seen);
    let hist = Experiment::new(AlgorithmSpec::parse("saps").unwrap().with_compression(4.0))
        .train(train)
        .validation(val)
        .workers(4)
        .batch_size(16)
        .model(|rng| zoo::mlp(&DIMS, rng))
        .rounds(4)
        .eval_every(4)
        .eval_samples(50)
        .after_round(move |trainer, point| {
            let ckpt = trainer.export_checkpoint().expect("cluster export");
            let round = checkpoint::peek_round(&ckpt).expect("round stamp");
            // `point.round` is 0-based; the stamp counts completed rounds.
            assert_eq!(round, point.round as u64 + 1, "stamp tracks the trainer");
            hook_rounds.borrow_mut().push(round);
            let mut fleet = hook_fleet.borrow_mut();
            fleet.announce(ckpt).unwrap();
            for i in 0..3 {
                fleet.submit(i, vec![0.1; 16]).unwrap();
            }
            fleet.tick().unwrap();
        })
        .run(&cluster_registry(WireTap::new()))
        .unwrap();
    assert_eq!(hist.points.len(), 4);
    assert_eq!(rounds_seen.borrow().as_slice(), &[1, 2, 3, 4]);

    let mut fleet = Rc::try_unwrap(serve).ok().expect("sole owner").into_inner();
    fleet.drain_in_flight(16).unwrap();

    // Every replica swapped once per round, versions monotone, no
    // rejected (torn) announce.
    for rep in fleet.replicas() {
        assert_eq!(rep.model_version(), 4, "one swap per announce");
        assert_eq!(rep.model_round(), 4);
        assert_eq!(rep.swaps(), 4);
        assert_eq!(rep.rejected_announces(), 0);
    }

    // Every request was answered, and the (round, version) tags on the
    // responses never regress in submission order: a client watching the
    // stream sees the model only move forward.
    let mut done = fleet.take_completed();
    assert_eq!(done.len(), 12);
    done.sort_by_key(|c| c.id);
    let mut last = (0u64, 0u64);
    for c in &done {
        let tag = (c.model_round, c.model_version);
        assert!(tag >= last, "tags regressed: {tag:?} after {last:?}");
        last = tag;
        assert_eq!(c.logits.len(), 4);
        assert!(c.logits.iter().all(|v| v.is_finite()));
    }
    // The final requests were served by the final consensus.
    assert_eq!(last, (4, 4));

    let stats = fleet.stats();
    assert_eq!(stats.submitted, 12);
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.announces, 4);
    assert_eq!(stats.swaps, 8);
    assert!(fleet.tap().snapshot().serve_bytes > 0);
    assert!(fleet.tap().snapshot().model_bytes > 0);
}
