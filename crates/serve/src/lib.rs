//! The SAPS-PSGD inference plane: serving the consensus model *while it
//! trains*.
//!
//! The paper's decentralized training loop periodically lands a
//! consensus model (the average the workers converge to). This crate
//! turns that artifact into a live service:
//!
//! * [`ReplicaNode`] — a replica loading a consensus checkpoint
//!   (`saps_core::checkpoint`) and answering
//!   [`saps_proto::Message::InferRequest`] frames in micro-batches,
//!   with **hot model swap**: a
//!   [`saps_proto::Message::ModelAnnounce`] checksum-verifies and
//!   shape-checks the incoming checkpoint before any weight moves, so
//!   torn or corrupt announces are counted rejections and the version
//!   tag a replica reports is monotone non-decreasing. Queued requests
//!   survive a swap, and every response carries the `(round, version)`
//!   of the model that produced it.
//! * [`ServeCluster`] — the fleet driver over the pluggable
//!   `saps-cluster` transports (deterministic loopback by default, TCP
//!   behind the `tcp` feature), ticking replicas in lockstep; replica
//!   inference fans out across the `saps-runtime` fork-join executor
//!   and response framing rides `par_map_batches`, so results are
//!   bit-identical at any thread count.
//! * [`ServePlacement`] — maps serving addresses onto the physical
//!   nodes of a `saps-netsim` bandwidth matrix, so serving transfers
//!   are priced by the same `TimeModel`s (fluid or packet) as the
//!   training round they share the fabric with — the mixed-load
//!   scenario of `docs/SERVING.md` and the `bench_serving` binary.
//!
//! The wire protocol is the `saps-proto` frame envelope; serving bytes
//! are metered in their own [`saps_cluster::WireStats::serve_bytes`]
//! class so co-located serving load never perturbs the trainer's
//! control-byte billing (pinned by `tests/cluster_conformance.rs`).
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use saps_core::checkpoint;
//! use saps_nn::zoo;
//! use saps_serve::{ReplicaNode, ServeCluster};
//!
//! // A consensus checkpoint (in production: Trainer::export_checkpoint).
//! let mut rng = StdRng::seed_from_u64(1);
//! let model = zoo::mlp(&[4, 8, 3], &mut rng);
//! let ckpt = checkpoint::encode(&model.flat_params(), 0);
//!
//! // Two replicas on the loopback fabric.
//! let replicas = (0..2)
//!     .map(|id| {
//!         let mut r = StdRng::seed_from_u64(1);
//!         ReplicaNode::new(id, zoo::mlp(&[4, 8, 3], &mut r), &ckpt, 8).unwrap()
//!     })
//!     .collect();
//! let mut fleet = ServeCluster::loopback(replicas).unwrap();
//! let id = fleet.submit(0, vec![0.1, 0.2, 0.3, 0.4]).unwrap();
//! fleet.drain_in_flight(8).unwrap();
//! let done = fleet.take_completed();
//! assert_eq!(done[0].id, id);
//! assert_eq!(done[0].logits.len(), 3);
//! ```

#![deny(missing_docs)]

mod cluster;
mod error;
mod replica;

pub use cluster::{CompletedRequest, ServeCluster, ServePlacement, ServeStats};
pub use error::ServeError;
pub use replica::ReplicaNode;
