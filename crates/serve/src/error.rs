//! Serving-plane errors.

use saps_cluster::ClusterError;
use saps_core::checkpoint::CheckpointError;
use saps_proto::ProtoError;

/// Errors produced by the serving plane.
#[derive(Debug)]
pub enum ServeError {
    /// The transport or a cluster-layer invariant failed.
    Cluster(ClusterError),
    /// A frame failed to encode or decode.
    Proto(ProtoError),
    /// A checkpoint failed to decode.
    Checkpoint(CheckpointError),
    /// The caller configured the serving fleet inconsistently (empty
    /// replica set, feature width mismatch, zero batch size, …).
    Config(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Cluster(e) => write!(f, "cluster error: {e}"),
            ServeError::Proto(e) => write!(f, "wire error: {e}"),
            ServeError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            ServeError::Config(msg) => write!(f, "serving config error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Cluster(e) => Some(e),
            ServeError::Proto(e) => Some(e),
            ServeError::Checkpoint(e) => Some(e),
            ServeError::Config(_) => None,
        }
    }
}

impl From<ClusterError> for ServeError {
    fn from(e: ClusterError) -> Self {
        ServeError::Cluster(e)
    }
}

impl From<ProtoError> for ServeError {
    fn from(e: ProtoError) -> Self {
        ServeError::Proto(e)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}
