//! A serving replica: one copy of the consensus model answering
//! inference requests, with hot checkpoint swap.

use crate::ServeError;
use saps_cluster::Addr;
use saps_core::checkpoint;
use saps_nn::Model;
use saps_proto::Message;
use std::collections::VecDeque;

/// One queued inference request: the client to answer, the request id,
/// and the feature row.
#[derive(Debug, Clone)]
struct Pending {
    client: Addr,
    id: u64,
    features: Vec<f32>,
}

/// A serving replica node.
///
/// A replica owns a private copy of the model (loaded from a consensus
/// checkpoint), queues [`Message::InferRequest`] frames, and drains the
/// queue in micro-batches of at most `max_batch` rows per forward pass.
/// [`Message::ModelAnnounce`] frames hot-swap the model **atomically
/// between batches**: the incoming checkpoint is checksum-verified and
/// shape-checked *before* any weight is touched, so a torn or corrupt
/// announce leaves the previous model serving and the version tag a
/// replica reports is monotone non-decreasing. Queued requests survive
/// a swap — they are simply answered by the new model, and every
/// response carries the `(round, version)` of the model that actually
/// produced it.
///
/// The state machine is transport-free (`handle` in,
/// [`drain`](ReplicaNode::drain) out), so it runs identically under the
/// loopback and TCP fabrics and is directly unit-testable.
#[derive(Debug)]
pub struct ReplicaNode {
    id: u32,
    model: Model,
    model_round: u64,
    model_version: u64,
    max_batch: usize,
    queue: VecDeque<Pending>,
    served: u64,
    batches: u64,
    batched_rows: u64,
    swaps: u64,
    rejected_announces: u64,
    rejected_requests: u64,
}

impl ReplicaNode {
    /// Boots replica `id` from an encoded consensus `checkpoint`.
    ///
    /// `model` supplies the architecture; its weights are overwritten by
    /// the checkpoint, which must carry exactly `model.num_params()`
    /// parameters. `max_batch` caps the rows per forward pass.
    pub fn new(
        id: u32,
        mut model: Model,
        checkpoint: &[u8],
        max_batch: usize,
    ) -> Result<Self, ServeError> {
        if max_batch == 0 {
            return Err(ServeError::Config("max_batch must be >= 1".into()));
        }
        let (params, round) = checkpoint::decode(bytes::Bytes::from(checkpoint.to_vec()))?;
        if params.len() != model.num_params() {
            return Err(ServeError::Config(format!(
                "checkpoint has {} params, model expects {}",
                params.len(),
                model.num_params()
            )));
        }
        model.set_flat_params(&params);
        Ok(ReplicaNode {
            id,
            model,
            model_round: round,
            model_version: 0,
            max_batch,
            queue: VecDeque::new(),
            served: 0,
            batches: 0,
            batched_rows: 0,
            swaps: 0,
            rejected_announces: 0,
            rejected_requests: 0,
        })
    }

    /// This replica's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The version tag of the model currently serving (0 for the boot
    /// checkpoint; bumped by every accepted announce). Monotone
    /// non-decreasing by construction.
    pub fn model_version(&self) -> u64 {
        self.model_version
    }

    /// The training round the serving model's checkpoint was taken at.
    pub fn model_round(&self) -> u64 {
        self.model_round
    }

    /// Requests queued and not yet answered.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Requests answered so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Forward passes run so far (micro-batches drained).
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Rows pushed through those forward passes — `batched_rows /
    /// batches` is this replica's mean batch occupancy.
    pub fn batched_rows(&self) -> u64 {
        self.batched_rows
    }

    /// Hot swaps accepted so far.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Announces rejected (corrupt, torn, wrong shape, or stale).
    pub fn rejected_announces(&self) -> u64 {
        self.rejected_announces
    }

    /// Requests rejected (feature width not matching the model input).
    pub fn rejected_requests(&self) -> u64 {
        self.rejected_requests
    }

    /// Feeds one decoded frame into the replica. Non-serving frames and
    /// malformed requests are counted and dropped — a replica never
    /// panics or wedges on hostile traffic.
    pub fn handle(&mut self, from: Addr, msg: Message) {
        match msg {
            Message::InferRequest { id, features } => {
                if features.len() != self.model.input_dim() {
                    self.rejected_requests += 1;
                    return;
                }
                self.queue.push_back(Pending {
                    client: from,
                    id,
                    features,
                });
            }
            Message::ModelAnnounce {
                round,
                version,
                checkpoint,
            } => self.try_swap(round, version, &checkpoint),
            // Training-plane frames never target replicas; drop rather
            // than wedge if one arrives anyway.
            _ => {}
        }
    }

    /// Validates an announced checkpoint and swaps it in. Any failure —
    /// bad checksum (torn write), wrong parameter count, round/version
    /// not advancing — leaves the current model serving untouched.
    fn try_swap(&mut self, round: u64, version: u64, checkpoint: &[u8]) {
        if version <= self.model_version {
            self.rejected_announces += 1;
            return;
        }
        let decoded = checkpoint::decode(bytes::Bytes::from(checkpoint.to_vec()));
        let (params, ckpt_round) = match decoded {
            Ok(ok) => ok,
            Err(_) => {
                self.rejected_announces += 1;
                return;
            }
        };
        if params.len() != self.model.num_params() || ckpt_round != round {
            self.rejected_announces += 1;
            return;
        }
        self.model.set_flat_params(&params);
        self.model_round = round;
        self.model_version = version;
        self.swaps += 1;
    }

    /// Answers every queued request, draining the queue in micro-batches
    /// of at most `max_batch` rows per forward pass. Returns
    /// `(client, response)` pairs in arrival order — the caller frames
    /// and sends them.
    pub fn drain(&mut self) -> Vec<(Addr, Message)> {
        let mut out = Vec::with_capacity(self.queue.len());
        while !self.queue.is_empty() {
            let take = self.queue.len().min(self.max_batch);
            self.batches += 1;
            self.batched_rows += take as u64;
            let batch: Vec<Pending> = self.queue.drain(..take).collect();
            let dim = self.model.input_dim();
            let mut features = Vec::with_capacity(take * dim);
            for p in &batch {
                features.extend_from_slice(&p.features);
            }
            let logits = self.model.forward(&features, take, false);
            let width = logits.data().len() / take;
            for (row, p) in batch.into_iter().enumerate() {
                out.push((
                    p.client,
                    Message::InferResponse {
                        id: p.id,
                        model_round: self.model_round,
                        model_version: self.model_version,
                        logits: logits.data()[row * width..(row + 1) * width].to_vec(),
                    },
                ));
                self.served += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saps_nn::zoo;

    fn boot(max_batch: usize) -> ReplicaNode {
        let mut rng = StdRng::seed_from_u64(9);
        let model = zoo::mlp(&[4, 8, 3], &mut rng);
        let ckpt = checkpoint::encode(&model.flat_params(), 5);
        ReplicaNode::new(0, model, &ckpt, max_batch).unwrap()
    }

    fn request(id: u64, dim: usize) -> Message {
        Message::InferRequest {
            id,
            features: (0..dim).map(|i| i as f32 * 0.1).collect(),
        }
    }

    #[test]
    fn serves_in_micro_batches_with_version_tags() {
        let mut rep = boot(4);
        for id in 0..10 {
            rep.handle(Addr::Client(7), request(id, 4));
        }
        let out = rep.drain();
        assert_eq!(out.len(), 10);
        assert_eq!(rep.served(), 10);
        assert_eq!(rep.queued(), 0);
        for (i, (client, msg)) in out.iter().enumerate() {
            assert_eq!(*client, Addr::Client(7));
            match msg {
                Message::InferResponse {
                    id,
                    model_round,
                    model_version,
                    logits,
                } => {
                    assert_eq!(*id, i as u64);
                    assert_eq!(*model_round, 5);
                    assert_eq!(*model_version, 0);
                    assert_eq!(logits.len(), 3);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn batching_is_transparent_to_results() {
        // The same requests through batch sizes 1 and 4 produce
        // bit-identical logits — micro-batching is a scheduling detail.
        let run = |max_batch| {
            let mut rep = boot(max_batch);
            for id in 0..7 {
                rep.handle(Addr::Client(0), request(id, 4));
            }
            rep.drain()
                .into_iter()
                .map(|(_, m)| match m {
                    Message::InferResponse { logits, .. } => logits,
                    other => panic!("unexpected {other:?}"),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn hot_swap_is_atomic_and_monotone() {
        let mut rep = boot(4);
        rep.handle(Addr::Client(0), request(0, 4));
        let before = match &rep.drain()[0].1 {
            Message::InferResponse { logits, .. } => logits.clone(),
            other => panic!("unexpected {other:?}"),
        };

        // A fresh checkpoint with different weights, announced as v1.
        let new_params: Vec<f32> = (0..count_params()).map(|i| (i as f32).cos()).collect();
        let ckpt = checkpoint::encode(&new_params, 9).to_vec();
        rep.handle(
            Addr::Coordinator,
            Message::ModelAnnounce {
                round: 9,
                version: 1,
                checkpoint: ckpt.clone(),
            },
        );
        assert_eq!(rep.model_version(), 1);
        assert_eq!(rep.model_round(), 9);
        assert_eq!(rep.swaps(), 1);

        rep.handle(Addr::Client(0), request(0, 4));
        let after = match &rep.drain()[0].1 {
            Message::InferResponse {
                model_version,
                logits,
                ..
            } => {
                assert_eq!(*model_version, 1);
                logits.clone()
            }
            other => panic!("unexpected {other:?}"),
        };
        assert_ne!(before, after, "swap must change the serving weights");

        // A stale re-announce of v1 is ignored; versions never regress.
        rep.handle(
            Addr::Coordinator,
            Message::ModelAnnounce {
                round: 9,
                version: 1,
                checkpoint: ckpt,
            },
        );
        assert_eq!(rep.model_version(), 1);
        assert_eq!(rep.rejected_announces(), 1);
    }

    fn count_params() -> usize {
        let mut rng = StdRng::seed_from_u64(9);
        zoo::mlp(&[4, 8, 3], &mut rng).num_params()
    }

    #[test]
    fn torn_checkpoint_is_rejected_old_model_keeps_serving() {
        let mut rep = boot(4);
        let good: Vec<f32> = (0..count_params()).map(|i| i as f32 * 1e-3).collect();
        let mut torn = checkpoint::encode(&good, 8).to_vec();
        let mid = torn.len() / 2;
        torn[mid] ^= 0xFF; // bit flip mid-payload: checksum now fails
        rep.handle(
            Addr::Coordinator,
            Message::ModelAnnounce {
                round: 8,
                version: 1,
                checkpoint: torn,
            },
        );
        assert_eq!(rep.model_version(), 0, "torn announce must not swap");
        assert_eq!(rep.rejected_announces(), 1);
        // Truncation is likewise rejected.
        let mut short = checkpoint::encode(&good, 8).to_vec();
        short.truncate(short.len() - 5);
        rep.handle(
            Addr::Coordinator,
            Message::ModelAnnounce {
                round: 8,
                version: 2,
                checkpoint: short,
            },
        );
        assert_eq!(rep.model_version(), 0);
        assert_eq!(rep.rejected_announces(), 2);
        // And the replica still answers.
        rep.handle(Addr::Client(1), request(3, 4));
        assert_eq!(rep.drain().len(), 1);
    }

    #[test]
    fn wrong_shape_announce_and_request_are_rejected() {
        let mut rep = boot(2);
        let ckpt = checkpoint::encode(&[1.0, 2.0, 3.0], 8).to_vec();
        rep.handle(
            Addr::Coordinator,
            Message::ModelAnnounce {
                round: 8,
                version: 1,
                checkpoint: ckpt,
            },
        );
        assert_eq!(rep.model_version(), 0);
        assert_eq!(rep.rejected_announces(), 1);
        // Feature width mismatch: dropped, not panicked on.
        rep.handle(Addr::Client(0), request(0, 3));
        assert_eq!(rep.queued(), 0);
        assert_eq!(rep.rejected_requests(), 1);
        // Training-plane frames are ignored.
        rep.handle(Addr::Coordinator, Message::FetchModel { rank: 1 });
        assert_eq!(rep.queued(), 0);
    }

    #[test]
    fn boot_rejects_bad_config() {
        let mut rng = StdRng::seed_from_u64(9);
        let model = zoo::mlp(&[4, 8, 3], &mut rng);
        let ckpt = checkpoint::encode(&model.flat_params(), 0);
        let mut rng2 = StdRng::seed_from_u64(9);
        assert!(matches!(
            ReplicaNode::new(0, zoo::mlp(&[4, 8, 3], &mut rng2), &ckpt, 0),
            Err(ServeError::Config(_))
        ));
        let mut rng3 = StdRng::seed_from_u64(9);
        assert!(matches!(
            ReplicaNode::new(0, zoo::mlp(&[4, 8, 3], &mut rng3), &[1, 2, 3], 4),
            Err(ServeError::Checkpoint(_))
        ));
        let small = checkpoint::encode(&[0.5; 4], 0);
        let mut rng4 = StdRng::seed_from_u64(9);
        assert!(matches!(
            ReplicaNode::new(0, zoo::mlp(&[4, 8, 3], &mut rng4), &small, 4),
            Err(ServeError::Config(_))
        ));
    }
}
