//! The serving fleet driver: replicas behind a transport, ticked in
//! lockstep with request batching across the fork-join executor.

use crate::{ReplicaNode, ServeError};
use bytes::Bytes;
use saps_cluster::{Addr, LoopbackTransport, Transport, WireTap};
use saps_core::{checkpoint, Recorder};
use saps_proto::{frame, Message};
use saps_runtime::Executor;
use std::collections::{BTreeMap, BTreeSet};

/// One answered request, as observed by the submitting client.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedRequest {
    /// The request id returned by [`ServeCluster::submit`].
    pub id: u64,
    /// The client that submitted it.
    pub client: u32,
    /// Training round of the model that answered.
    pub model_round: u64,
    /// Version tag of the model that answered.
    pub model_version: u64,
    /// The model output row.
    pub logits: Vec<f32>,
    /// Ticks from submission to the response reaching the client.
    pub latency_ticks: u64,
}

/// Cumulative serving-fleet counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Responses delivered back to clients.
    pub completed: u64,
    /// Ticks driven.
    pub ticks: u64,
    /// Model announces broadcast.
    pub announces: u64,
    /// Hot swaps accepted across all replicas.
    pub swaps: u64,
    /// Frames that failed to decode (corruption on the wire).
    pub corrupt_frames: u64,
}

/// A serving fleet: replicas and their clients behind one [`Transport`].
///
/// The driver is tick-based, mirroring the training cluster's round
/// pump: [`submit`] frames requests onto the wire (round-robin across
/// replicas), [`announce`] broadcasts a new consensus checkpoint, and
/// each [`tick`] moves every in-flight frame one hop — replicas ingest
/// their inboxes and drain their queues in micro-batches, responses are
/// framed and delivered, clients record completions with per-request
/// latency. Replica inference fans out across the `saps-runtime`
/// fork-join [`Executor`] and response framing goes through
/// `par_map_batches`, so a tick's results are bit-identical at any
/// thread count.
///
/// [`submit`]: ServeCluster::submit
/// [`announce`]: ServeCluster::announce
/// [`tick`]: ServeCluster::tick
pub struct ServeCluster<T: Transport> {
    replicas: Vec<ReplicaNode>,
    transport: T,
    tap: WireTap,
    exec: Executor,
    encode_batch: usize,
    next_replica: usize,
    next_request: u64,
    announce_version: u64,
    clients: BTreeSet<u32>,
    submit_tick: BTreeMap<u64, u64>,
    tick: u64,
    completed: Vec<CompletedRequest>,
    transfers: Vec<(Addr, Addr, u64)>,
    stats: ServeStats,
    telemetry: Recorder,
    /// Tick each announce version was broadcast at — the baseline the
    /// per-replica swap latency histogram measures from.
    announce_tick: BTreeMap<u64, u64>,
}

impl ServeCluster<LoopbackTransport> {
    /// A fleet over the deterministic in-process loopback transport,
    /// with a fresh [`WireTap`].
    pub fn loopback(replicas: Vec<ReplicaNode>) -> Result<Self, ServeError> {
        let tap = WireTap::new();
        let transport = LoopbackTransport::new(tap.clone());
        ServeCluster::with_transport(transport, tap, replicas)
    }
}

impl<T: Transport> ServeCluster<T> {
    /// A fleet over an arbitrary transport. `tap` must be the tap the
    /// transport reports to (so [`ServeCluster::tap`] reflects this
    /// fleet's wire traffic).
    pub fn with_transport(
        transport: T,
        tap: WireTap,
        replicas: Vec<ReplicaNode>,
    ) -> Result<Self, ServeError> {
        if replicas.is_empty() {
            return Err(ServeError::Config("need at least one replica".into()));
        }
        Ok(ServeCluster {
            replicas,
            transport,
            tap,
            exec: Executor::default(),
            encode_batch: 32,
            next_replica: 0,
            next_request: 0,
            announce_version: 0,
            clients: BTreeSet::new(),
            submit_tick: BTreeMap::new(),
            tick: 0,
            completed: Vec::new(),
            transfers: Vec::new(),
            stats: ServeStats::default(),
            telemetry: Recorder::disabled(),
            announce_tick: BTreeMap::new(),
        })
    }

    /// Attaches a telemetry recorder: request latency / batch occupancy
    /// / swap latency land in its registry, swap rejections dump the
    /// flight recorder. Serving events carry the driver's `tick` (the
    /// serving plane has no DES virtual clock), and recording never
    /// changes responses — pinned by `tests/telemetry.rs`.
    pub fn with_telemetry(mut self, telemetry: Recorder) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the fork-join executor replica inference fans out on.
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// The wire tap metering this fleet's traffic.
    pub fn tap(&self) -> &WireTap {
        &self.tap
    }

    /// The replica fleet (read-only; the driver owns mutation).
    pub fn replicas(&self) -> &[ReplicaNode] {
        &self.replicas
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ServeStats {
        let mut s = self.stats;
        s.swaps = self.replicas.iter().map(ReplicaNode::swaps).sum();
        s
    }

    /// Submits one inference request from `client`, round-robin across
    /// replicas. Returns the request id carried on the response.
    pub fn submit(&mut self, client: u32, features: Vec<f32>) -> Result<u64, ServeError> {
        let id = self.next_request;
        self.next_request += 1;
        let replica = self.replicas[self.next_replica].id();
        self.next_replica = (self.next_replica + 1) % self.replicas.len();
        let frame = frame::encode(&Message::InferRequest { id, features });
        self.log_transfer(Addr::Client(client), Addr::Replica(replica), frame.len());
        self.transport
            .send(Addr::Client(client), Addr::Replica(replica), frame)?;
        self.clients.insert(client);
        self.submit_tick.insert(id, self.tick);
        self.stats.submitted += 1;
        if self.telemetry.is_enabled() {
            self.telemetry.add("serve.submitted", 1);
        }
        Ok(id)
    }

    /// Broadcasts a consensus `checkpoint` (as produced by
    /// `Trainer::export_checkpoint`) to every replica with a fresh,
    /// strictly increasing version tag. Returns that version.
    ///
    /// The checkpoint's round stamp is read from its header; replicas
    /// still run the full checksummed decode before swapping, so a
    /// corrupt broadcast degrades to a counted rejection, never a torn
    /// model.
    pub fn announce(&mut self, checkpoint: Vec<u8>) -> Result<u64, ServeError> {
        let round = checkpoint::peek_round(&checkpoint)
            .ok_or_else(|| ServeError::Config("announce payload is not a checkpoint".into()))?;
        self.announce_version += 1;
        let version = self.announce_version;
        let msg = Message::ModelAnnounce {
            round,
            version,
            checkpoint,
        };
        let frame = frame::encode(&msg);
        for i in 0..self.replicas.len() {
            let to = Addr::Replica(self.replicas[i].id());
            self.log_transfer(Addr::Coordinator, to, frame.len());
            self.transport.send(Addr::Coordinator, to, frame.clone())?;
        }
        self.stats.announces += 1;
        if self.telemetry.is_enabled() {
            self.announce_tick.insert(version, self.tick);
            self.telemetry.add("serve.announces", 1);
            self.telemetry.event(
                "model.announce",
                Some(round),
                vec![("version", version.into()), ("tick", self.tick.into())],
            );
        }
        Ok(version)
    }

    /// Moves every in-flight frame one hop: replicas ingest and answer,
    /// clients collect responses. Returns the number of requests
    /// completed this tick.
    pub fn tick(&mut self) -> Result<usize, ServeError> {
        self.tick += 1;
        self.stats.ticks += 1;
        // Pre-tick snapshot so accepted swaps and rejected announces can
        // be attributed to this tick once the replicas have run.
        let pre: Vec<(u64, u64)> = if self.telemetry.is_enabled() {
            self.replicas
                .iter()
                .map(|r| (r.model_version(), r.rejected_announces()))
                .collect()
        } else {
            Vec::new()
        };

        // Sweep each replica's inbox (the transport needs `&mut self`,
        // so this part is sequential and replica-ordered).
        let mut inboxes: Vec<Vec<(Addr, Bytes)>> = Vec::with_capacity(self.replicas.len());
        for rep in &self.replicas {
            let at = Addr::Replica(rep.id());
            let mut inbox = Vec::new();
            while let Some(item) = self.transport.recv(at)? {
                inbox.push(item);
            }
            inboxes.push(inbox);
        }

        // Fan replica inference out across the executor: decode, handle,
        // drain. `par_map` returns results in item order regardless of
        // thread count, so the response stream is deterministic.
        let replicas = std::mem::take(&mut self.replicas);
        let work: Vec<(ReplicaNode, Vec<(Addr, Bytes)>)> =
            replicas.into_iter().zip(inboxes).collect();
        let processed = self.exec.par_map(work, |_, (mut rep, inbox)| {
            let mut corrupt = 0u64;
            for (from, raw) in inbox {
                match frame::decode(&raw) {
                    Ok(msg) => rep.handle(from, msg),
                    Err(_) => corrupt += 1,
                }
            }
            let out = rep.drain();
            (rep, out, corrupt)
        });

        // Reassemble the fleet and frame the responses in micro-batches
        // across the executor.
        let mut outgoing: Vec<(Addr, Addr, Message)> = Vec::new();
        for (rep, responses, corrupt) in processed {
            self.stats.corrupt_frames += corrupt;
            let from = Addr::Replica(rep.id());
            for (client, msg) in responses {
                outgoing.push((from, client, msg));
            }
            self.replicas.push(rep);
        }
        if self.telemetry.is_enabled() {
            for (rep, &(version, rejected)) in self.replicas.iter().zip(&pre) {
                if rep.model_version() > version {
                    let v = rep.model_version();
                    if let Some(&announced) = self.announce_tick.get(&v) {
                        self.telemetry
                            .observe("serve.swap_latency_ticks", (self.tick - announced) as f64);
                    }
                    self.telemetry.add("serve.swaps", 1);
                    self.telemetry.event(
                        "model.swap",
                        Some(rep.model_round()),
                        vec![
                            ("replica", u64::from(rep.id()).into()),
                            ("version", v.into()),
                            ("tick", self.tick.into()),
                        ],
                    );
                }
                if rep.rejected_announces() > rejected {
                    let delta = rep.rejected_announces() - rejected;
                    self.telemetry.add("serve.swap_rejections", delta);
                    self.telemetry.event(
                        "swap.rejected",
                        None,
                        vec![
                            ("replica", u64::from(rep.id()).into()),
                            ("count", delta.into()),
                            ("tick", self.tick.into()),
                        ],
                    );
                    self.telemetry.crash_dump("hot-swap rejected");
                }
            }
        }
        let framed: Vec<Vec<(Addr, Addr, Bytes)>> =
            self.exec
                .par_map_batches(outgoing, self.encode_batch, |_, batch| {
                    batch
                        .into_iter()
                        .map(|(from, to, msg)| (from, to, frame::encode(&msg)))
                        .collect()
                });
        for (from, to, frame) in framed.into_iter().flatten() {
            self.log_transfer(from, to, frame.len());
            self.transport.send(from, to, frame)?;
        }

        // Clients collect whatever reached them this tick.
        let mut done = 0usize;
        for &client in &self.clients.clone() {
            while let Some((_, raw)) = self.transport.recv(Addr::Client(client))? {
                let msg = match frame::decode(&raw) {
                    Ok(msg) => msg,
                    Err(_) => {
                        self.stats.corrupt_frames += 1;
                        continue;
                    }
                };
                if let Message::InferResponse {
                    id,
                    model_round,
                    model_version,
                    logits,
                } = msg
                {
                    let submitted = self.submit_tick.remove(&id).unwrap_or(self.tick);
                    let latency = self.tick - submitted;
                    if self.telemetry.is_enabled() {
                        self.telemetry.add("serve.completed", 1);
                        self.telemetry
                            .observe("serve.latency_ticks", latency as f64);
                    }
                    self.completed.push(CompletedRequest {
                        id,
                        client,
                        model_round,
                        model_version,
                        logits,
                        latency_ticks: latency,
                    });
                    self.stats.completed += 1;
                    done += 1;
                }
            }
        }
        if self.telemetry.is_enabled() {
            let batches: u64 = self.replicas.iter().map(ReplicaNode::batches).sum();
            let rows: u64 = self.replicas.iter().map(ReplicaNode::batched_rows).sum();
            if batches > 0 {
                self.telemetry
                    .set_gauge("serve.batch_occupancy", rows as f64 / batches as f64);
            }
        }
        Ok(done)
    }

    /// Drives [`tick`](ServeCluster::tick) until no request is in
    /// flight (or `max_ticks` elapse). Returns the ticks driven.
    pub fn drain_in_flight(&mut self, max_ticks: u64) -> Result<u64, ServeError> {
        let mut driven = 0;
        while !self.submit_tick.is_empty() && driven < max_ticks {
            self.tick()?;
            driven += 1;
        }
        Ok(driven)
    }

    /// Takes the completed requests accumulated since the last call.
    pub fn take_completed(&mut self) -> Vec<CompletedRequest> {
        std::mem::take(&mut self.completed)
    }

    /// Takes the `(from, to, bytes)` transfer log accumulated since the
    /// last call — the input to DES pricing via [`ServePlacement`].
    pub fn take_transfers(&mut self) -> Vec<(Addr, Addr, u64)> {
        std::mem::take(&mut self.transfers)
    }

    fn log_transfer(&mut self, from: Addr, to: Addr, bytes: usize) {
        self.transfers.push((from, to, bytes as u64));
    }
}

/// Maps serving-plane addresses onto the physical nodes of a bandwidth
/// matrix, so serving transfers can be priced on the *same* fabric as
/// the training round (the mixed-load scenario of `docs/SERVING.md`).
///
/// The placement is the simple co-location the paper's environment
/// implies: the coordinator on node 0, worker `r` and replica `r` on
/// node `r mod nodes` (a replica shares its host with the worker of the
/// same rank), client `c` on node `c mod nodes`.
#[derive(Debug, Clone, Copy)]
pub struct ServePlacement {
    /// Physical node count (the bandwidth matrix dimension).
    pub nodes: usize,
}

impl ServePlacement {
    /// The physical node hosting `addr`.
    pub fn node_of(&self, addr: Addr) -> usize {
        match addr {
            Addr::Coordinator => 0,
            Addr::Worker(r) | Addr::Replica(r) => r as usize % self.nodes,
            Addr::Client(c) => c as usize % self.nodes,
        }
    }

    /// Maps a serving transfer log onto physical `(src, dst, bytes)`
    /// transfers, dropping same-node hops (loopback traffic never
    /// crosses the fabric, and the matrix diagonal carries no
    /// bandwidth).
    pub fn map(&self, transfers: &[(Addr, Addr, u64)]) -> Vec<(usize, usize, u64)> {
        transfers
            .iter()
            .filter_map(|&(from, to, bytes)| {
                let (src, dst) = (self.node_of(from), self.node_of(to));
                (src != dst).then_some((src, dst, bytes))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saps_nn::zoo;
    use saps_runtime::ParallelismPolicy;

    fn fleet(n: u32, max_batch: usize) -> Vec<ReplicaNode> {
        let mut rng = StdRng::seed_from_u64(3);
        let model = zoo::mlp(&[4, 6, 2], &mut rng);
        let ckpt = checkpoint::encode(&model.flat_params(), 1);
        (0..n)
            .map(|id| {
                let mut r = StdRng::seed_from_u64(3);
                ReplicaNode::new(id, zoo::mlp(&[4, 6, 2], &mut r), &ckpt, max_batch).unwrap()
            })
            .collect()
    }

    fn feats(seed: u64) -> Vec<f32> {
        (0..4).map(|i| ((seed + i) as f32).sin()).collect()
    }

    #[test]
    fn requests_complete_with_latency_and_tags() {
        let mut sc = ServeCluster::loopback(fleet(2, 4)).unwrap();
        for i in 0..6 {
            sc.submit(i % 3, feats(i as u64)).unwrap();
        }
        // One tick: replicas ingest, answer, and the loopback delivers
        // the responses to the client sweep of the same tick.
        assert_eq!(sc.tick().unwrap(), 6);
        let done = sc.take_completed();
        assert_eq!(done.len(), 6);
        for c in &done {
            assert_eq!(c.model_round, 1);
            assert_eq!(c.model_version, 0);
            assert_eq!(c.logits.len(), 2);
            assert_eq!(c.latency_ticks, 1);
        }
        let s = sc.stats();
        assert_eq!((s.submitted, s.completed), (6, 6));
        assert!(sc.tap().snapshot().serve_bytes > 0);
    }

    #[test]
    fn identical_at_any_thread_count() {
        let run = |threads| {
            let mut sc = ServeCluster::loopback(fleet(3, 2))
                .unwrap()
                .with_executor(Executor::new(ParallelismPolicy::Threads(threads)));
            for i in 0..12 {
                sc.submit(i % 2, feats(i as u64)).unwrap();
            }
            sc.drain_in_flight(16).unwrap();
            sc.take_completed()
        };
        let one = run(1);
        assert_eq!(one.len(), 12);
        assert_eq!(one, run(4));
        assert_eq!(one, run(8));
    }

    #[test]
    fn announce_swaps_every_replica_in_flight_requests_survive() {
        let mut sc = ServeCluster::loopback(fleet(2, 4)).unwrap();
        for i in 0..4 {
            sc.submit(0, feats(i)).unwrap();
        }
        // Announce lands in the same tick the requests are served:
        // queued work survives the swap and is answered by the new model.
        let n = sc.replicas()[0].id();
        assert_eq!(n, 0);
        let params: Vec<f32> = {
            let mut rng = StdRng::seed_from_u64(3);
            let m = zoo::mlp(&[4, 6, 2], &mut rng);
            (0..m.num_params()).map(|i| (i as f32).cos()).collect()
        };
        let v = sc
            .announce(checkpoint::encode(&params, 7).to_vec())
            .unwrap();
        assert_eq!(v, 1);
        sc.drain_in_flight(8).unwrap();
        let done = sc.take_completed();
        assert_eq!(done.len(), 4);
        for c in &done {
            assert_eq!((c.model_round, c.model_version), (7, 1));
        }
        assert!(sc.replicas().iter().all(|r| r.model_version() == 1));
        assert_eq!(sc.stats().swaps, 2);
    }

    #[test]
    fn placement_prices_on_the_shared_fabric() {
        let mut sc = ServeCluster::loopback(fleet(2, 4)).unwrap();
        sc.submit(1, feats(0)).unwrap();
        sc.drain_in_flight(8).unwrap();
        let log = sc.take_transfers();
        assert!(!log.is_empty());
        let placement = ServePlacement { nodes: 4 };
        let mapped = placement.map(&log);
        // Client 1 → replica 0 and back: both hops cross nodes 1↔0.
        assert_eq!(mapped.len(), 2);
        assert!(mapped.iter().all(|&(s, d, b)| s != d && b > 0));
        // Same-node hops are dropped.
        let same = [(Addr::Client(2), Addr::Replica(2), 100u64)];
        assert!(placement.map(&same).is_empty());
    }

    #[test]
    fn empty_fleet_is_rejected() {
        assert!(matches!(
            ServeCluster::loopback(Vec::new()),
            Err(ServeError::Config(_))
        ));
    }
}
