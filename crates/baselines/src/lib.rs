//! The seven comparison algorithms of the paper's evaluation, all behind
//! the shared [`saps_core::Trainer`] interface:
//!
//! | Type | Algorithms |
//! |------|-----------|
//! | centralized, dense | [`PsgdAllReduce`] (all-reduce PSGD), [`FedAvg`] |
//! | centralized, sparse | [`TopKPsgd`], [`SFedAvg`] |
//! | decentralized, dense | [`DPsgd`] (ring) |
//! | decentralized, sparse | [`DcdPsgd`] (ring + difference compression), [`RandomChoose`] (SAPS without bandwidth awareness) |
//!
//! Every implementation charges its real payload bytes to the
//! [`saps_netsim::TrafficAccountant`] and computes round time from the
//! bandwidth matrix, so Figs. 4-6 and Table IV compare like for like.
//!
//! Construction goes through [`registry`] — the full eight-algorithm
//! [`saps_core::AlgorithmRegistry`] behind the
//! [`saps_core::Experiment`] driver. Worker churn is first-class: every
//! baseline honours [`saps_core::Trainer::set_worker_active`] through
//! the [`Fleet`]'s membership mask.

#![warn(missing_docs)]

pub mod allreduce;
mod common;
mod d_psgd;
mod dcd_psgd;
mod fedavg;
mod psgd;
mod random_choose;
mod registry;
mod s_fedavg;
mod topk_psgd;

pub use common::{select_ranked_mut, Fleet};
pub use d_psgd::DPsgd;
pub use dcd_psgd::DcdPsgd;
pub use fedavg::{FedAvg, FedAvgConfig};
pub use psgd::PsgdAllReduce;
pub use random_choose::RandomChoose;
pub use registry::{register_baselines, registry};
pub use s_fedavg::SFedAvg;
pub use topk_psgd::TopKPsgd;
