//! FedAvg: the canonical parameter-server federated-learning baseline.

use crate::Fleet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use saps_core::{RoundReport, Trainer};
use saps_data::Dataset;
use saps_netsim::{timemodel, BandwidthMatrix, TrafficAccountant};
use saps_tensor::rng::{derive_seed, streams};

/// FedAvg hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedAvgConfig {
    /// Fraction of workers selected per round (the paper uses 0.5).
    pub participation: f64,
    /// Local SGD steps each selected worker runs before uploading.
    pub local_steps: usize,
}

impl Default for FedAvgConfig {
    fn default() -> Self {
        FedAvgConfig {
            participation: 0.5,
            local_steps: 5,
        }
    }
}

/// FedAvg [35]: each round the server samples a fraction of workers,
/// ships them the global model, lets them run several local SGD steps,
/// and averages their uploaded models.
///
/// The server is placed at the best-connected node
/// ([`BandwidthMatrix::best_server`]) exactly as the paper's Section IV-D
/// does when charging FedAvg's communication time.
pub struct FedAvg {
    fleet: Fleet,
    cfg: FedAvgConfig,
    server_model: Vec<f32>,
    rng: StdRng,
}

impl FedAvg {
    /// Wraps a fleet. `seed` drives client sampling.
    pub fn new(fleet: Fleet, cfg: FedAvgConfig, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&cfg.participation) && cfg.participation > 0.0);
        assert!(cfg.local_steps >= 1);
        let server_model = fleet.worker(0).flat();
        FedAvg {
            fleet,
            cfg,
            server_model,
            rng: StdRng::seed_from_u64(derive_seed(seed, 0, streams::CLIENT_SAMPLE)),
        }
    }

    /// The hyper-parameters in use.
    pub fn config(&self) -> FedAvgConfig {
        self.cfg
    }

    /// Samples this round's client set.
    fn sample_clients(&mut self) -> Vec<usize> {
        let n = self.fleet.len();
        let k = ((n as f64 * self.cfg.participation).round() as usize).clamp(1, n);
        let mut ranks: Vec<usize> = (0..n).collect();
        ranks.shuffle(&mut self.rng);
        ranks.truncate(k);
        ranks.sort_unstable();
        ranks
    }

    /// One FedAvg round (dense download + dense upload).
    fn dense_round(
        &mut self,
        traffic: &mut TrafficAccountant,
        bw: &BandwidthMatrix,
    ) -> RoundReport {
        let clients = self.sample_clients();
        let server = bw.best_server();
        let n_params = self.fleet.n_params();
        let dense_bytes = 4 * n_params as u64;

        for &r in &clients {
            self.fleet.worker_mut(r).set_flat(&self.server_model);
            traffic.record_download(r, dense_bytes);
        }

        let mut loss = 0.0f64;
        let mut acc = 0.0f64;
        let (bs, lr) = (self.fleet.batch_size, self.fleet.lr);
        for &r in &clients {
            for _ in 0..self.cfg.local_steps {
                let (l, a) = self.fleet.worker_mut(r).sgd_step(bs, lr);
                loss += l as f64;
                acc += a as f64;
            }
        }
        let steps = (clients.len() * self.cfg.local_steps) as f64;

        let mut accum = vec![0.0f32; n_params];
        for &r in &clients {
            let flat = self.fleet.worker(r).flat();
            for (a, v) in accum.iter_mut().zip(&flat) {
                *a += v;
            }
            traffic.record_upload(r, dense_bytes);
        }
        let inv = 1.0 / clients.len() as f32;
        for a in &mut accum {
            *a *= inv;
        }
        self.server_model = accum;
        traffic.end_round();

        let transfers: Vec<(usize, u64, u64)> = clients
            .iter()
            .map(|&r| (r, dense_bytes, dense_bytes))
            .collect();
        let comm_time_s = timemodel::ps_round_time(bw, server, &transfers);

        RoundReport {
            mean_loss: (loss / steps) as f32,
            mean_acc: (acc / steps) as f32,
            comm_time_s,
            epochs_advanced: self.fleet.epochs_per_round()
                * self.cfg.local_steps as f64
                * self.cfg.participation,
            mean_link_bandwidth: 0.0,
            min_link_bandwidth: 0.0,
        }
    }
}

impl Trainer for FedAvg {
    fn name(&self) -> &'static str {
        "FedAvg"
    }

    fn round(&mut self, traffic: &mut TrafficAccountant, bw: &BandwidthMatrix) -> RoundReport {
        self.dense_round(traffic, bw)
    }

    fn evaluate(&mut self, val: &Dataset, max_samples: usize) -> f32 {
        let server = self.server_model.clone();
        self.fleet.evaluate_flat(&server, val, max_samples)
    }

    fn model_len(&self) -> usize {
        self.fleet.n_params()
    }

    fn worker_count(&self) -> usize {
        self.fleet.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::SyntheticSpec;
    use saps_nn::zoo;

    fn setup(n: usize) -> (FedAvg, Dataset, BandwidthMatrix) {
        let ds = SyntheticSpec::tiny().samples(1_200).generate(1);
        let (train, val) = ds.split(0.25, 0);
        let fleet = Fleet::new(n, &train, |rng| zoo::mlp(&[16, 24, 4], rng), 3, 16, 0.1);
        (
            FedAvg::new(fleet, FedAvgConfig::default(), 5),
            val,
            BandwidthMatrix::constant(n, 1.0),
        )
    }

    #[test]
    fn half_participation_selects_half() {
        let (mut algo, _, _) = setup(8);
        let c = algo.sample_clients();
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn server_traffic_is_2nk_per_round() {
        let (mut algo, _, bw) = setup(8);
        let mut t = TrafficAccountant::new(8);
        algo.round(&mut t, &bw);
        let n_params = algo.model_len() as u64;
        // 4 clients × (download N + upload N) × 4 bytes.
        assert_eq!(t.server_total(), 4 * 2 * 4 * n_params);
    }

    #[test]
    fn converges() {
        let (mut algo, val, bw) = setup(8);
        let mut t = TrafficAccountant::new(8);
        for _ in 0..60 {
            algo.round(&mut t, &bw);
        }
        let acc = algo.evaluate(&val, 300);
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn round_time_counts_slowest_client() {
        let (mut algo, _, mut bw) = setup(4);
        // Make one worker slow to *everyone*, so whichever node hosts the
        // server, that client's link is the bottleneck when selected.
        let victim = 1;
        for other in 0..4 {
            if other != victim {
                bw.set(victim, other, 0.001);
            }
        }
        let mut t = TrafficAccountant::new(4);
        // Run several rounds: whenever the victim is selected the round
        // time must reflect the slow link.
        let mut saw_slow = false;
        for _ in 0..10 {
            let rep = algo.round(&mut t, &bw);
            if rep.comm_time_s > 1.0 {
                saw_slow = true;
            }
        }
        assert!(saw_slow, "slow client never gated a round");
    }
}
