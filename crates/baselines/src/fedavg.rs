//! FedAvg: the canonical parameter-server federated-learning baseline.

use crate::Fleet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use saps_core::{ConfigError, RoundCtx, RoundReport, Trainer};
use saps_data::Dataset;
use saps_tensor::rng::{derive_seed, streams};

/// FedAvg hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedAvgConfig {
    /// Fraction of workers selected per round (the paper uses 0.5).
    pub participation: f64,
    /// Local SGD steps each selected worker runs before uploading.
    pub local_steps: usize,
}

impl Default for FedAvgConfig {
    fn default() -> Self {
        FedAvgConfig {
            participation: 0.5,
            local_steps: 5,
        }
    }
}

/// FedAvg \[35\]: each round the server samples a fraction of the *active*
/// workers, ships them the global model, lets them run several local SGD
/// steps, and averages their uploaded models.
///
/// The server is placed at the best-connected node
/// ([`saps_netsim::BandwidthMatrix::best_server`]) exactly as the paper's
/// Section IV-D does when charging FedAvg's communication time. Placement
/// is decided once, from the first round's measurements, and then pinned:
/// under drifting bandwidths a per-round re-placement would teleport the
/// server model between nodes at zero cost, undercharging FedAvg in
/// exactly the dynamic-network comparisons. Churn is trivial for a PS
/// algorithm: inactive workers simply drop out of the sampling pool (the
/// server model is the source of truth).
pub struct FedAvg {
    fleet: Fleet,
    cfg: FedAvgConfig,
    server_model: Vec<f32>,
    /// Pinned server placement (decided on the first round).
    server: Option<usize>,
    rng: StdRng,
    rounds: u64,
}

impl FedAvg {
    /// Wraps a fleet. `seed` drives client sampling.
    pub fn new(fleet: Fleet, cfg: FedAvgConfig, seed: u64) -> Result<Self, ConfigError> {
        if !(cfg.participation > 0.0 && cfg.participation <= 1.0) {
            return Err(ConfigError::invalid(
                "FedAvgConfig",
                format!("participation {} must be in (0, 1]", cfg.participation),
            ));
        }
        if cfg.local_steps == 0 {
            return Err(ConfigError::invalid(
                "FedAvgConfig",
                "local_steps must be >= 1",
            ));
        }
        let server_model = fleet.worker(0).flat();
        Ok(FedAvg {
            fleet,
            cfg,
            server_model,
            server: None,
            rng: StdRng::seed_from_u64(derive_seed(seed, 0, streams::CLIENT_SAMPLE)),
            rounds: 0,
        })
    }

    /// The hyper-parameters in use.
    pub fn config(&self) -> FedAvgConfig {
        self.cfg
    }

    /// Samples this round's client set from the active workers.
    fn sample_clients(&mut self) -> Vec<usize> {
        let mut ranks = self.fleet.active_ranks();
        let m = ranks.len();
        let k = ((m as f64 * self.cfg.participation).round() as usize).clamp(1, m);
        ranks.shuffle(&mut self.rng);
        ranks.truncate(k);
        ranks.sort_unstable();
        ranks
    }
}

impl Trainer for FedAvg {
    fn name(&self) -> &'static str {
        "FedAvg"
    }

    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> RoundReport {
        let bw = ctx.bw;
        let exec = ctx.exec;
        let clients = self.sample_clients();
        let server = *self.server.get_or_insert_with(|| bw.best_server());
        let n_params = self.fleet.n_params();
        let dense_bytes = 4 * n_params as u64;

        for &r in &clients {
            ctx.traffic.record_download(r, dense_bytes);
        }

        // Each selected client pulls the global model and runs its local
        // steps — fully independent per client, fanned out across the
        // round executor; the loss reduction runs in client-rank order.
        let (loss, acc) =
            self.fleet
                .local_steps_on(&exec, &clients, &self.server_model, self.cfg.local_steps);
        let steps = (clients.len() * self.cfg.local_steps) as f64;

        let mut accum = vec![0.0f32; n_params];
        for &r in &clients {
            let flat = self.fleet.worker(r).flat();
            for (a, v) in accum.iter_mut().zip(&flat) {
                *a += v;
            }
            ctx.traffic.record_upload(r, dense_bytes);
        }
        let inv = 1.0 / clients.len() as f32;
        for a in &mut accum {
            *a *= inv;
        }
        self.server_model = accum;
        ctx.traffic.end_round();

        let transfers: Vec<(usize, u64, u64)> = clients
            .iter()
            .map(|&r| (r, dense_bytes, dense_bytes))
            .collect();
        let timing = ctx.price_ps(server, &transfers);

        let mut rep = RoundReport::new();
        rep.mean_loss = (loss / steps) as f32;
        rep.mean_acc = (acc / steps) as f32;
        rep.set_timing(&timing);
        rep.epochs_advanced =
            self.fleet.epochs_per_round() * self.cfg.local_steps as f64 * self.cfg.participation;
        self.rounds += 1;
        rep
    }

    fn evaluate(&mut self, val: &Dataset, max_samples: usize) -> f32 {
        let server = self.server_model.clone();
        self.fleet.evaluate_flat(&server, val, max_samples)
    }

    fn model_len(&self) -> usize {
        self.fleet.n_params()
    }

    fn worker_count(&self) -> usize {
        self.fleet.len()
    }

    fn set_worker_active(&mut self, rank: usize, active: bool) -> Result<(), ConfigError> {
        self.fleet.set_active(rank, active, 2)
    }

    fn export_checkpoint(&mut self) -> Result<Vec<u8>, ConfigError> {
        Ok(saps_core::checkpoint::encode(&self.server_model, self.rounds).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::SyntheticSpec;
    use saps_netsim::{BandwidthMatrix, TrafficAccountant};
    use saps_nn::zoo;

    fn setup(n: usize) -> (FedAvg, Dataset, BandwidthMatrix) {
        let ds = SyntheticSpec::tiny().samples(1_200).generate(1);
        let (train, val) = ds.split(0.25, 0);
        let fleet = Fleet::new(n, &train, |rng| zoo::mlp(&[16, 24, 4], rng), 3, 16, 0.1).unwrap();
        (
            FedAvg::new(fleet, FedAvgConfig::default(), 5).unwrap(),
            val,
            BandwidthMatrix::constant(n, 1.0),
        )
    }

    #[test]
    fn half_participation_selects_half() {
        let (mut algo, _, _) = setup(8);
        let c = algo.sample_clients();
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let ds = SyntheticSpec::tiny().samples(400).generate(1);
        let mk = || Fleet::new(4, &ds, |rng| zoo::mlp(&[16, 12, 4], rng), 3, 16, 0.1).unwrap();
        let cfg = FedAvgConfig {
            participation: 0.0,
            local_steps: 5,
        };
        assert!(FedAvg::new(mk(), cfg, 5).is_err());
        let cfg = FedAvgConfig {
            participation: 0.5,
            local_steps: 0,
        };
        assert!(FedAvg::new(mk(), cfg, 5).is_err());
    }

    #[test]
    fn server_traffic_is_2nk_per_round() {
        let (mut algo, _, bw) = setup(8);
        let mut t = TrafficAccountant::new(8);
        algo.round(&mut t, &bw);
        let n_params = algo.model_len() as u64;
        // 4 clients × (download N + upload N) × 4 bytes.
        assert_eq!(t.server_total(), 4 * 2 * 4 * n_params);
    }

    #[test]
    fn converges() {
        let (mut algo, val, bw) = setup(8);
        let mut t = TrafficAccountant::new(8);
        for _ in 0..60 {
            algo.round(&mut t, &bw);
        }
        let acc = algo.evaluate(&val, 300);
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn inactive_workers_leave_the_sampling_pool() {
        let (mut algo, _, bw) = setup(8);
        algo.set_worker_active(0, false).unwrap();
        algo.set_worker_active(1, false).unwrap();
        for _ in 0..20 {
            let c = algo.sample_clients();
            assert_eq!(c.len(), 3); // round(6 * 0.5)
            assert!(c.iter().all(|&r| r >= 2), "sampled inactive worker: {c:?}");
        }
        let mut t = TrafficAccountant::new(8);
        let rep = algo.round(&mut t, &bw);
        assert!(rep.mean_loss.is_finite());
        assert_eq!(t.worker_total(0), 0);
    }

    #[test]
    fn round_time_counts_slowest_client() {
        let (mut algo, _, mut bw) = setup(4);
        // Make one worker slow to *everyone*, so whichever node hosts the
        // server, that client's link is the bottleneck when selected.
        let victim = 1;
        for other in 0..4 {
            if other != victim {
                bw.set(victim, other, 0.001);
            }
        }
        let mut t = TrafficAccountant::new(4);
        // Run several rounds: whenever the victim is selected the round
        // time must reflect the slow link.
        let mut saw_slow = false;
        for _ in 0..10 {
            let rep = algo.round(&mut t, &bw);
            if rep.comm_time_s > 1.0 {
                saw_slow = true;
            }
        }
        assert!(saw_slow, "slow client never gated a round");
    }
}
