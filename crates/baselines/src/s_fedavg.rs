//! S-FedAvg: FedAvg with random-mask sparsified uploads \[5\].

use crate::Fleet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use saps_compress::codec;
use saps_compress::mask::RandomMask;
use saps_core::{ConfigError, RoundCtx, RoundReport, Trainer};
use saps_data::Dataset;
use saps_tensor::rng::{derive_seed, streams};

/// Sparse FedAvg (Konečný et al.'s "random mask" structured update):
/// downloads stay dense, but each selected client uploads only the
/// coordinates of a per-round random mask (compression ratio `c`); the
/// server averages the masked coordinates and keeps its own values for
/// the rest.
///
/// Per Table I the worker cost is `(N + 2N/c)·T`: the dense down-link is
/// untouched — the asymmetry SAPS-PSGD's shared-seed trick removes.
/// Like [`crate::FedAvg`], server placement is pinned from the first
/// round's measurements so drifting bandwidths can't migrate the server
/// for free.
pub struct SFedAvg {
    fleet: Fleet,
    participation: f64,
    local_steps: usize,
    compression: f64,
    server_model: Vec<f32>,
    /// Pinned server placement (decided on the first round).
    server: Option<usize>,
    rng: StdRng,
    round: u64,
    /// The per-client upload mask, regenerated in place per client to
    /// reuse its buffer.
    mask: RandomMask,
}

impl SFedAvg {
    /// Wraps a fleet. The paper uses `participation = 0.5`, `c = 100`.
    pub fn new(
        fleet: Fleet,
        participation: f64,
        local_steps: usize,
        compression: f64,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        if !(participation > 0.0 && participation <= 1.0) {
            return Err(ConfigError::invalid(
                "SFedAvg",
                format!("participation {participation} must be in (0, 1]"),
            ));
        }
        if local_steps == 0 {
            return Err(ConfigError::invalid("SFedAvg", "local_steps must be >= 1"));
        }
        if !(compression >= 1.0 && compression.is_finite()) {
            return Err(ConfigError::invalid(
                "SFedAvg",
                format!("compression {compression} must be a finite ratio >= 1"),
            ));
        }
        let server_model = fleet.worker(0).flat();
        let mask = RandomMask::from_indices(fleet.n_params(), Vec::new());
        Ok(SFedAvg {
            fleet,
            participation,
            local_steps,
            compression,
            server_model,
            server: None,
            rng: StdRng::seed_from_u64(derive_seed(seed, 1, streams::CLIENT_SAMPLE)),
            round: 0,
            mask,
        })
    }
}

impl Trainer for SFedAvg {
    fn name(&self) -> &'static str {
        "S-FedAvg"
    }

    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> RoundReport {
        let bw = ctx.bw;
        let exec = ctx.exec;
        let n_params = self.fleet.n_params();
        let mut clients = self.fleet.active_ranks();
        let m = clients.len();
        let k = ((m as f64 * self.participation).round() as usize).clamp(1, m);
        clients.shuffle(&mut self.rng);
        clients.truncate(k);

        let server = *self.server.get_or_insert_with(|| bw.best_server());
        let dense_bytes = 4 * n_params as u64;

        for &r in &clients {
            ctx.traffic.record_download(r, dense_bytes);
        }

        // Dense download + local steps per selected client, fanned out
        // (the client set and every mask below still come from the
        // sequential sampling RNG, so the exchange stays untouched).
        let (loss, acc) =
            self.fleet
                .local_steps_on(&exec, &clients, &self.server_model, self.local_steps);
        let steps = (clients.len() * self.local_steps) as f64;

        // Sparse uploads over *per-client* random masks ([5]'s "random
        // mask" structured update): each client sends (index, value)
        // pairs — 8 bytes/coordinate, the 2N/c of Table I. The server
        // averages each coordinate over the clients whose mask included
        // it, so the union of masks covers most of the model each round.
        let mut sums = vec![0.0f32; n_params];
        let mut counts = vec![0u32; n_params];
        let mut up_bytes_of = Vec::with_capacity(clients.len());
        for &r in &clients {
            self.mask
                .regenerate(n_params, self.compression, self.rng.gen(), self.round);
            let mask = &self.mask;
            let payload = self.fleet.worker(r).sparse_payload(mask);
            for (&i, &v) in mask.indices().iter().zip(&payload) {
                sums[i as usize] += v;
                counts[i as usize] += 1;
            }
            let up = codec::sparse_iv_bytes(mask.nnz());
            ctx.traffic.record_upload(r, up);
            up_bytes_of.push(up);
        }
        for i in 0..n_params {
            if counts[i] > 0 {
                self.server_model[i] = sums[i] / counts[i] as f32;
            }
        }
        ctx.traffic.end_round();
        self.round += 1;

        let transfers: Vec<(usize, u64, u64)> = clients
            .iter()
            .zip(&up_bytes_of)
            .map(|(&r, &up)| (r, up, dense_bytes))
            .collect();
        let timing = ctx.price_ps(server, &transfers);

        let mut rep = RoundReport::new();
        rep.mean_loss = (loss / steps) as f32;
        rep.mean_acc = (acc / steps) as f32;
        rep.set_timing(&timing);
        rep.epochs_advanced =
            self.fleet.epochs_per_round() * self.local_steps as f64 * self.participation;
        rep
    }

    fn evaluate(&mut self, val: &Dataset, max_samples: usize) -> f32 {
        let server = self.server_model.clone();
        self.fleet.evaluate_flat(&server, val, max_samples)
    }

    fn model_len(&self) -> usize {
        self.fleet.n_params()
    }

    fn worker_count(&self) -> usize {
        self.fleet.len()
    }

    fn set_worker_active(&mut self, rank: usize, active: bool) -> Result<(), ConfigError> {
        self.fleet.set_active(rank, active, 2)
    }

    fn export_checkpoint(&mut self) -> Result<Vec<u8>, ConfigError> {
        Ok(saps_core::checkpoint::encode(&self.server_model, self.round).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::SyntheticSpec;
    use saps_netsim::{BandwidthMatrix, TrafficAccountant};
    use saps_nn::zoo;

    fn setup(n: usize, c: f64) -> (SFedAvg, Dataset, BandwidthMatrix) {
        let ds = SyntheticSpec::tiny().samples(1_200).generate(1);
        let (train, val) = ds.split(0.25, 0);
        let fleet = Fleet::new(n, &train, |rng| zoo::mlp(&[16, 24, 4], rng), 3, 16, 0.1).unwrap();
        (
            SFedAvg::new(fleet, 0.5, 5, c, 5).unwrap(),
            val,
            BandwidthMatrix::constant(n, 1.0),
        )
    }

    #[test]
    fn uploads_are_sparse_downloads_dense() {
        let (mut algo, _, bw) = setup(8, 10.0);
        let mut t = TrafficAccountant::new(8);
        algo.round(&mut t, &bw);
        let n_params = algo.model_len() as u64;
        // Find a selected worker: received the dense model.
        let selected: Vec<usize> = (0..8).filter(|&r| t.worker_recv(r) > 0).collect();
        assert_eq!(selected.len(), 4);
        for &r in &selected {
            assert_eq!(t.worker_recv(r), 4 * n_params);
            assert!(t.worker_sent(r) < n_params); // ~8·N/10 bytes < 4·N
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let ds = SyntheticSpec::tiny().samples(400).generate(1);
        let mk = || Fleet::new(4, &ds, |rng| zoo::mlp(&[16, 12, 4], rng), 3, 16, 0.1).unwrap();
        assert!(SFedAvg::new(mk(), 0.0, 5, 10.0, 5).is_err());
        assert!(SFedAvg::new(mk(), 0.5, 0, 10.0, 5).is_err());
        assert!(SFedAvg::new(mk(), 0.5, 5, 0.5, 5).is_err());
    }

    #[test]
    fn converges_with_moderate_compression() {
        let (mut algo, val, bw) = setup(8, 10.0);
        let mut t = TrafficAccountant::new(8);
        for _ in 0..80 {
            algo.round(&mut t, &bw);
        }
        let acc = algo.evaluate(&val, 300);
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn churned_workers_are_not_sampled() {
        let (mut algo, _, bw) = setup(8, 10.0);
        algo.set_worker_active(7, false).unwrap();
        let mut t = TrafficAccountant::new(8);
        for _ in 0..10 {
            algo.round(&mut t, &bw);
        }
        assert_eq!(t.worker_total(7), 0, "inactive worker was selected");
    }

    #[test]
    fn cheaper_than_dense_fedavg_per_round() {
        use crate::{FedAvg, FedAvgConfig};
        let (mut sparse, _, bw) = setup(8, 100.0);
        let ds = SyntheticSpec::tiny().samples(1_200).generate(1);
        let (train, _) = ds.split(0.25, 0);
        let fleet = Fleet::new(8, &train, |rng| zoo::mlp(&[16, 24, 4], rng), 3, 16, 0.1).unwrap();
        let mut dense = FedAvg::new(fleet, FedAvgConfig::default(), 5).unwrap();
        let mut ts = TrafficAccountant::new(8);
        let mut td = TrafficAccountant::new(8);
        for _ in 0..5 {
            sparse.round(&mut ts, &bw);
            dense.round(&mut td, &bw);
        }
        assert!(ts.server_total() < td.server_total());
    }
}
