//! D-PSGD: decentralized parallel SGD on a fixed ring \[25\].

use crate::Fleet;
use saps_core::{ConfigError, RoundCtx, RoundReport, Trainer};
use saps_data::Dataset;
use saps_graph::topology;

/// D-PSGD on the fixed ring `0 → 1 → … → n−1 → 0` (the paper's Section
/// IV-D setup): each round every worker runs one SGD step, sends its
/// **full dense model** to both ring neighbours, and replaces its model
/// with the three-way average `x_i ← (x_{i−1} + x_i + x_{i+1})/3`.
///
/// Per-worker traffic is `4·N` parameters per round (2 sends + 2
/// receives) — the communication-hungry baseline of Fig. 4. Under churn
/// the ring closes over the surviving active ranks in rank order.
pub struct DPsgd {
    fleet: Fleet,
    rounds: u64,
}

impl DPsgd {
    /// Wraps a fleet (needs ≥ 3 workers for a proper ring).
    pub fn new(fleet: Fleet) -> Result<Self, ConfigError> {
        if fleet.len() < 3 {
            return Err(ConfigError::invalid(
                "DPsgd",
                "D-PSGD ring needs at least 3 workers",
            ));
        }
        Ok(DPsgd { fleet, rounds: 0 })
    }
}

impl Trainer for DPsgd {
    fn name(&self) -> &'static str {
        "D-PSGD"
    }

    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> RoundReport {
        let bw = ctx.bw;
        let exec = ctx.exec;
        let traffic = &mut *ctx.traffic;
        let ranks = self.fleet.active_ranks();
        let m = ranks.len();
        let (loss, acc) = self.fleet.sgd_step_all_on(&exec);

        // Snapshot active models, then mix over the active ring:
        // x_i = (x_{i-1} + x_i + x_{i+1})/3. Every worker's mixed model
        // depends only on the immutable snapshots, so the mixing fans
        // out too (each lane rewrites its own worker in place).
        let snapshots: Vec<Vec<f32>> = ranks.iter().map(|&r| self.fleet.worker(r).flat()).collect();
        let items = self.fleet.workers_mut_at(&ranks);
        exec.par_map(items, |i, (_, w)| {
            let prev = &snapshots[(i + m - 1) % m];
            let next = &snapshots[(i + 1) % m];
            w.update_flat(|flat| {
                for k in 0..flat.len() {
                    flat[k] = (prev[k] + flat[k] + next[k]) / 3.0;
                }
            });
        });

        // Traffic: every active worker sends its dense model to both ring
        // neighbours.
        let dense_bytes = 4 * self.fleet.n_params() as u64;
        let mut transfers = Vec::with_capacity(2 * m);
        for i in 0..m {
            for peer in [ranks[(i + 1) % m], ranks[(i + m - 1) % m]] {
                traffic.record_p2p(ranks[i], peer, dense_bytes);
                transfers.push((ranks[i], peer, dense_bytes));
            }
        }
        traffic.end_round();
        let timing = ctx.price_p2p(&transfers);

        let ring = topology::ring_edges_over(&ranks);
        let mean_link = ring.iter().map(|&(a, b)| bw.get(a, b)).sum::<f64>() / ring.len() as f64;
        let min_link = ring
            .iter()
            .map(|&(a, b)| bw.get(a, b))
            .fold(f64::INFINITY, f64::min);
        let mut rep = RoundReport::new();
        rep.mean_loss = loss;
        rep.mean_acc = acc;
        rep.set_timing(&timing);
        rep.epochs_advanced = self.fleet.epochs_per_round();
        rep.mean_link_bandwidth = mean_link;
        rep.min_link_bandwidth = min_link;
        self.rounds += 1;
        rep
    }

    fn evaluate(&mut self, val: &Dataset, max_samples: usize) -> f32 {
        self.fleet.evaluate_average(val, max_samples)
    }

    fn model_len(&self) -> usize {
        self.fleet.n_params()
    }

    fn worker_count(&self) -> usize {
        self.fleet.len()
    }

    fn set_worker_active(&mut self, rank: usize, active: bool) -> Result<(), ConfigError> {
        // The ring needs at least 3 live workers to stay a ring.
        self.fleet.set_active(rank, active, 3)
    }

    fn export_checkpoint(&mut self) -> Result<Vec<u8>, ConfigError> {
        let avg = self.fleet.average_model();
        Ok(saps_core::checkpoint::encode(&avg, self.rounds).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::SyntheticSpec;
    use saps_netsim::{BandwidthMatrix, TrafficAccountant};
    use saps_nn::zoo;

    fn setup(n: usize) -> (DPsgd, Dataset, BandwidthMatrix) {
        let ds = SyntheticSpec::tiny().samples(1_200).generate(1);
        let (train, val) = ds.split(0.25, 0);
        let fleet = Fleet::new(n, &train, |rng| zoo::mlp(&[16, 24, 4], rng), 3, 16, 0.1).unwrap();
        (
            DPsgd::new(fleet).unwrap(),
            val,
            BandwidthMatrix::constant(n, 1.0),
        )
    }

    #[test]
    fn traffic_is_4n_dense_per_round() {
        let (mut algo, _, bw) = setup(4);
        let mut t = TrafficAccountant::new(4);
        algo.round(&mut t, &bw);
        let dense = 4 * algo.model_len() as u64;
        assert_eq!(t.worker_sent(0), 2 * dense);
        assert_eq!(t.worker_recv(0), 2 * dense);
        assert_eq!(t.server_total(), 0);
    }

    #[test]
    fn mixing_preserves_global_average() {
        let (mut algo, _, bw) = setup(4);
        let mut t = TrafficAccountant::new(4);
        // After SGD the models differ; check the mixing invariant across
        // a round with lr = 0.
        algo.fleet.lr = 0.0;
        let before = algo.fleet.average_model();
        algo.round(&mut t, &bw);
        let after = algo.fleet.average_model();
        for (a, b) in after.iter().zip(&before) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn converges() {
        let (mut algo, val, bw) = setup(4);
        let mut t = TrafficAccountant::new(4);
        for _ in 0..120 {
            algo.round(&mut t, &bw);
        }
        let acc = algo.evaluate(&val, 300);
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn churn_closes_the_ring_over_survivors() {
        let (mut algo, _, bw) = setup(5);
        let mut t = TrafficAccountant::new(5);
        algo.set_worker_active(2, false).unwrap();
        let frozen = algo.fleet.worker(2).flat();
        for _ in 0..5 {
            let rep = algo.round(&mut t, &bw);
            assert!(rep.mean_loss.is_finite());
        }
        assert_eq!(algo.fleet.worker(2).flat(), frozen);
        assert_eq!(t.worker_total(2), 0, "inactive worker exchanged");
        // Survivors each still send 2 dense models per round.
        let dense = 4 * algo.model_len() as u64;
        assert_eq!(t.worker_sent(0), 5 * 2 * dense);
        // Dropping below 3 active is refused.
        algo.set_worker_active(0, false).unwrap();
        assert!(algo.set_worker_active(1, false).is_err());
    }

    #[test]
    fn ring_consensus_spreads_information() {
        // With lr = 0 and distinct initial models, repeated mixing must
        // shrink the consensus distance.
        let (mut algo, _, bw) = setup(6);
        algo.fleet.lr = 0.0;
        // Perturb worker 0 to create disagreement.
        let mut f = algo.fleet.worker(0).flat();
        for v in &mut f {
            *v += 1.0;
        }
        algo.fleet.worker_mut(0).set_flat(&f);
        let dist = |fleet: &Fleet| {
            let avg = fleet.average_model();
            (0..fleet.len())
                .map(|r| {
                    fleet
                        .worker(r)
                        .flat()
                        .iter()
                        .zip(&avg)
                        .map(|(a, b)| ((a - b) as f64).powi(2))
                        .sum::<f64>()
                })
                .sum::<f64>()
        };
        let d0 = dist(&algo.fleet);
        let mut t = TrafficAccountant::new(6);
        for _ in 0..20 {
            algo.round(&mut t, &bw);
        }
        let d1 = dist(&algo.fleet);
        assert!(d1 < d0 * 0.05, "consensus {d0} -> {d1}");
    }
}
