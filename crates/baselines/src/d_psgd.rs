//! D-PSGD: decentralized parallel SGD on a fixed ring [25].

use crate::Fleet;
use saps_core::{RoundReport, Trainer};
use saps_data::Dataset;
use saps_graph::topology;
use saps_netsim::{timemodel, BandwidthMatrix, TrafficAccountant};

/// D-PSGD on the fixed ring `0 → 1 → … → n−1 → 0` (the paper's Section
/// IV-D setup): each round every worker runs one SGD step, sends its
/// **full dense model** to both ring neighbours, and replaces its model
/// with the three-way average `x_i ← (x_{i−1} + x_i + x_{i+1})/3`.
///
/// Per-worker traffic is `4·N` parameters per round (2 sends + 2
/// receives) — the communication-hungry baseline of Fig. 4.
pub struct DPsgd {
    fleet: Fleet,
}

impl DPsgd {
    /// Wraps a fleet (needs ≥ 3 workers for a proper ring).
    pub fn new(fleet: Fleet) -> Self {
        assert!(fleet.len() >= 3, "D-PSGD ring needs at least 3 workers");
        DPsgd { fleet }
    }
}

impl Trainer for DPsgd {
    fn name(&self) -> &'static str {
        "D-PSGD"
    }

    fn round(&mut self, traffic: &mut TrafficAccountant, bw: &BandwidthMatrix) -> RoundReport {
        let n = self.fleet.len();
        let (loss, acc) = self.fleet.sgd_step_all();

        // Snapshot all models, then mix: x_i = (x_{i-1} + x_i + x_{i+1})/3.
        let snapshots: Vec<Vec<f32>> = (0..n).map(|r| self.fleet.worker(r).flat()).collect();
        for r in 0..n {
            let prev = &snapshots[(r + n - 1) % n];
            let next = &snapshots[(r + 1) % n];
            let me = &snapshots[r];
            let mixed: Vec<f32> = (0..me.len())
                .map(|i| (prev[i] + me[i] + next[i]) / 3.0)
                .collect();
            self.fleet.worker_mut(r).set_flat(&mixed);
        }

        // Traffic: every worker sends its dense model to both neighbours.
        let dense_bytes = 4 * self.fleet.n_params() as u64;
        let mut transfers = Vec::with_capacity(2 * n);
        for r in 0..n {
            for peer in [(r + 1) % n, (r + n - 1) % n] {
                traffic.record_p2p(r, peer, dense_bytes);
                transfers.push((r, peer, dense_bytes));
            }
        }
        traffic.end_round();
        let comm_time_s = timemodel::p2p_round_time(bw, &transfers);

        let ring = topology::ring_edges(n);
        let mean_link = ring.iter().map(|&(a, b)| bw.get(a, b)).sum::<f64>() / ring.len() as f64;
        let min_link = ring
            .iter()
            .map(|&(a, b)| bw.get(a, b))
            .fold(f64::INFINITY, f64::min);
        RoundReport {
            mean_loss: loss,
            mean_acc: acc,
            comm_time_s,
            epochs_advanced: self.fleet.epochs_per_round(),
            mean_link_bandwidth: mean_link,
            min_link_bandwidth: min_link,
        }
    }

    fn evaluate(&mut self, val: &Dataset, max_samples: usize) -> f32 {
        self.fleet.evaluate_average(val, max_samples)
    }

    fn model_len(&self) -> usize {
        self.fleet.n_params()
    }

    fn worker_count(&self) -> usize {
        self.fleet.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::SyntheticSpec;
    use saps_nn::zoo;

    fn setup(n: usize) -> (DPsgd, Dataset, BandwidthMatrix) {
        let ds = SyntheticSpec::tiny().samples(1_200).generate(1);
        let (train, val) = ds.split(0.25, 0);
        let fleet = Fleet::new(n, &train, |rng| zoo::mlp(&[16, 24, 4], rng), 3, 16, 0.1);
        (DPsgd::new(fleet), val, BandwidthMatrix::constant(n, 1.0))
    }

    #[test]
    fn traffic_is_4n_dense_per_round() {
        let (mut algo, _, bw) = setup(4);
        let mut t = TrafficAccountant::new(4);
        algo.round(&mut t, &bw);
        let dense = 4 * algo.model_len() as u64;
        assert_eq!(t.worker_sent(0), 2 * dense);
        assert_eq!(t.worker_recv(0), 2 * dense);
        assert_eq!(t.server_total(), 0);
    }

    #[test]
    fn mixing_preserves_global_average() {
        let (mut algo, _, bw) = setup(4);
        let mut t = TrafficAccountant::new(4);
        // After SGD the models differ; record the average and one more
        // mixing-only effect via a zero-lr fleet is overkill — instead
        // check the invariant across a round with lr = 0.
        algo.fleet.lr = 0.0;
        let before = algo.fleet.average_model();
        algo.round(&mut t, &bw);
        let after = algo.fleet.average_model();
        for (a, b) in after.iter().zip(&before) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn converges() {
        let (mut algo, val, bw) = setup(4);
        let mut t = TrafficAccountant::new(4);
        for _ in 0..120 {
            algo.round(&mut t, &bw);
        }
        let acc = algo.evaluate(&val, 300);
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn ring_consensus_spreads_information() {
        // With lr = 0 and distinct initial models, repeated mixing must
        // shrink the consensus distance.
        let (mut algo, _, bw) = setup(6);
        algo.fleet.lr = 0.0;
        // Perturb worker 0 to create disagreement.
        let mut f = algo.fleet.worker(0).flat();
        for v in &mut f {
            *v += 1.0;
        }
        algo.fleet.worker_mut(0).set_flat(&f);
        let dist = |fleet: &Fleet| {
            let avg = fleet.average_model();
            (0..fleet.len())
                .map(|r| {
                    fleet
                        .worker(r)
                        .flat()
                        .iter()
                        .zip(&avg)
                        .map(|(a, b)| ((a - b) as f64).powi(2))
                        .sum::<f64>()
                })
                .sum::<f64>()
        };
        let d0 = dist(&algo.fleet);
        let mut t = TrafficAccountant::new(6);
        for _ in 0..20 {
            algo.round(&mut t, &bw);
        }
        let d1 = dist(&algo.fleet);
        assert!(d1 < d0 * 0.05, "consensus {d0} -> {d1}");
    }
}
