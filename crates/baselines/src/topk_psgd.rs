//! TopK-PSGD: dense-convergence sparsified gradients with error feedback.

use crate::Fleet;
use saps_compress::codec;
use saps_compress::topk::{densify, ErrorFeedbackTopK};
use saps_core::{ConfigError, RoundCtx, RoundReport, Trainer};
use saps_data::Dataset;
use saps_tensor::scratch::BufferPool;

/// TopK-PSGD \[20\], \[34\]: each worker sends the top `N/c` coordinates of
/// its error-compensated gradient to **all** other active workers (sparse
/// allgather), then every replica applies the same averaged sparse
/// update.
///
/// Per-worker traffic is `2·n·(N/c)` parameters per round (Table I) —
/// local sparsification does not remove the linear-in-`n` factor, which
/// is exactly the weakness SAPS-PSGD attacks.
pub struct TopKPsgd {
    fleet: Fleet,
    compressors: Vec<ErrorFeedbackTopK>,
    compression: f64,
    /// Scratch for the per-round mean gradient, reused across rounds.
    pool: BufferPool,
    rounds: u64,
}

impl TopKPsgd {
    /// Wraps a fleet with compression ratio `c` (the paper uses 1000).
    pub fn new(fleet: Fleet, compression: f64) -> Result<Self, ConfigError> {
        if !(compression >= 1.0 && compression.is_finite()) {
            return Err(ConfigError::invalid(
                "TopKPsgd",
                format!("compression {compression} must be a finite ratio >= 1"),
            ));
        }
        let n_params = fleet.n_params();
        let compressors = (0..fleet.len())
            .map(|_| ErrorFeedbackTopK::with_ratio(n_params, compression))
            .collect();
        Ok(TopKPsgd {
            fleet,
            compressors,
            compression,
            pool: BufferPool::new(),
            rounds: 0,
        })
    }

    /// The compression ratio in use.
    pub fn compression(&self) -> f64 {
        self.compression
    }
}

impl Trainer for TopKPsgd {
    fn name(&self) -> &'static str {
        "TopK-PSGD"
    }

    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> RoundReport {
        let bw = ctx.bw;
        let exec = ctx.exec;
        let traffic = &mut *ctx.traffic;
        let ranks = self.fleet.active_ranks();
        let m = ranks.len();
        let n_params = self.fleet.n_params();
        let (loss, acc) = self.fleet.accumulate_grads_all_on(&exec);

        // Compress every active worker's gradient with its private
        // residual — per-worker state, so the top-k selection fans out
        // with the compute phase.
        let fleet = &self.fleet;
        let comp_items = crate::select_ranked_mut(&mut self.compressors, &ranks);
        let payloads = exec.par_map(comp_items, |_, (r, comp)| {
            comp.compress(&fleet.worker(r).model().flat_grads())
        });

        // Average of the densified sparse gradients, reduced in rank
        // order on one thread.
        let mut mean_grad = self.pool.take_zeroed(n_params);
        for (idx, vals) in &payloads {
            let dense = densify(n_params, idx, vals);
            saps_tensor::ops::axpy(1.0 / m as f32, &dense, &mut mean_grad);
        }
        let lr = self.fleet.lr;
        let mean = &mean_grad;
        let items = self.fleet.workers_mut_at(&ranks);
        exec.par_map(items, |_, (_, w)| {
            w.add_scaled(-lr, mean);
            w.model_mut().zero_grads();
        });
        self.pool.give(mean_grad);

        // Allgather traffic: each ordered active pair moves one sparse
        // payload.
        let mut payload_bytes = 0u64;
        for (i, (idx, _)) in payloads.iter().enumerate() {
            let bytes = codec::sparse_iv_bytes(idx.len());
            payload_bytes = payload_bytes.max(bytes);
            for (j, &dst) in ranks.iter().enumerate() {
                if j != i {
                    traffic.record_p2p(ranks[i], dst, bytes);
                }
            }
        }
        traffic.end_round();
        // (m-1) sequential chunks over the slowest active link gate the
        // allgather.
        let timing = ctx.price_allgather(&ranks, payload_bytes);
        let mut min_link = f64::INFINITY;
        let mut sum_link = 0.0f64;
        let mut links = 0usize;
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    let l = bw.get(ranks[i], ranks[j]);
                    min_link = min_link.min(l);
                    sum_link += l;
                    links += 1;
                }
            }
        }

        let mut rep = RoundReport::new();
        rep.mean_loss = loss;
        rep.mean_acc = acc;
        rep.set_timing(&timing);
        rep.epochs_advanced = self.fleet.epochs_per_round();
        rep.mean_link_bandwidth = sum_link / links.max(1) as f64;
        rep.min_link_bandwidth = min_link;
        self.rounds += 1;
        rep
    }

    fn evaluate(&mut self, val: &Dataset, max_samples: usize) -> f32 {
        let first = self.fleet.active_ranks()[0];
        let flat = self.fleet.worker(first).flat();
        self.fleet.evaluate_flat(&flat, val, max_samples)
    }

    fn model_len(&self) -> usize {
        self.fleet.n_params()
    }

    fn worker_count(&self) -> usize {
        self.fleet.len()
    }

    fn set_worker_active(&mut self, rank: usize, active: bool) -> Result<(), ConfigError> {
        self.fleet.set_active(rank, active, 2)?;
        if active {
            // Resync the joiner so replicas stay bit-identical; its stale
            // error-feedback residual is cleared with the model.
            let donor = self
                .fleet
                .active_ranks()
                .into_iter()
                .find(|&r| r != rank)
                .expect("at least two active workers");
            let flat = self.fleet.worker(donor).flat();
            let joiner = self.fleet.worker_mut(rank);
            joiner.set_flat(&flat);
            joiner.model_mut().zero_grads();
            self.compressors[rank] =
                ErrorFeedbackTopK::with_ratio(self.fleet.n_params(), self.compression);
        }
        Ok(())
    }

    fn export_checkpoint(&mut self) -> Result<Vec<u8>, ConfigError> {
        let first = self.fleet.active_ranks()[0];
        let flat = self.fleet.worker(first).flat();
        Ok(saps_core::checkpoint::encode(&flat, self.rounds).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::SyntheticSpec;
    use saps_netsim::{BandwidthMatrix, TrafficAccountant};
    use saps_nn::zoo;

    fn setup(n: usize, c: f64) -> (TopKPsgd, Dataset, BandwidthMatrix) {
        let ds = SyntheticSpec::tiny().samples(1_200).generate(1);
        let (train, val) = ds.split(0.25, 0);
        let fleet = Fleet::new(n, &train, |rng| zoo::mlp(&[16, 24, 4], rng), 3, 16, 0.1).unwrap();
        (
            TopKPsgd::new(fleet, c).unwrap(),
            val,
            BandwidthMatrix::constant(n, 1.0),
        )
    }

    #[test]
    fn replicas_stay_identical() {
        let (mut algo, _, bw) = setup(4, 10.0);
        let mut t = TrafficAccountant::new(4);
        for _ in 0..5 {
            algo.round(&mut t, &bw);
        }
        let base = algo.fleet.worker(0).flat();
        for r in 1..4 {
            assert_eq!(base, algo.fleet.worker(r).flat());
        }
    }

    #[test]
    fn converges_despite_heavy_sparsification() {
        let (mut algo, val, bw) = setup(4, 20.0);
        let mut t = TrafficAccountant::new(4);
        for _ in 0..200 {
            algo.round(&mut t, &bw);
        }
        let acc = algo.evaluate(&val, 300);
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn traffic_linear_in_worker_count() {
        let (mut a4, _, bw4) = setup(4, 10.0);
        let (mut a8, _, bw8) = setup(8, 10.0);
        let mut t4 = TrafficAccountant::new(4);
        let mut t8 = TrafficAccountant::new(8);
        a4.round(&mut t4, &bw4);
        a8.round(&mut t8, &bw8);
        let ratio = t8.worker_sent(0) as f64 / t4.worker_sent(0) as f64;
        // (8-1)/(4-1) ≈ 2.33 — the allgather's linear-in-n cost.
        assert!((ratio - 7.0 / 3.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn payload_respects_compression_ratio() {
        let (mut algo, _, bw) = setup(4, 10.0);
        let mut t = TrafficAccountant::new(4);
        algo.round(&mut t, &bw);
        let k = (algo.model_len() as f64 / 10.0).round() as usize;
        let expect_per_peer = codec::sparse_iv_bytes(k);
        assert_eq!(t.worker_sent(0), expect_per_peer * 3);
    }

    #[test]
    fn invalid_compression_is_rejected() {
        let ds = SyntheticSpec::tiny().samples(400).generate(1);
        let fleet = Fleet::new(4, &ds, |rng| zoo::mlp(&[16, 12, 4], rng), 3, 16, 0.1).unwrap();
        assert!(TopKPsgd::new(fleet, 0.0).is_err());
    }

    #[test]
    fn churn_keeps_survivors_identical() {
        let (mut algo, _, bw) = setup(4, 10.0);
        let mut t = TrafficAccountant::new(4);
        algo.round(&mut t, &bw);
        algo.set_worker_active(1, false).unwrap();
        for _ in 0..3 {
            algo.round(&mut t, &bw);
        }
        let ranks = algo.fleet.active_ranks();
        let base = algo.fleet.worker(ranks[0]).flat();
        for &r in &ranks[1..] {
            assert_eq!(base, algo.fleet.worker(r).flat());
        }
        algo.set_worker_active(1, true).unwrap();
        assert_eq!(algo.fleet.worker(1).flat(), base);
    }
}
