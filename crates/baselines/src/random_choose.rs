//! RandomChoose: SAPS-PSGD's exchange with uniformly random peers.
//!
//! The Fig. 5 ablation — identical sparsified single-peer exchange, but
//! the matching is a *uniformly random* perfect matching instead of the
//! bandwidth-aware Algorithm 3. Convergence behaviour is essentially the
//! same (random matchings mix well); what it loses is bandwidth: the
//! expected bottleneck of a random matching is far below what maximum
//! matching on `B*` achieves.

use crate::Fleet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use saps_compress::codec;
use saps_compress::mask::RandomMask;
use saps_core::{ConfigError, RoundCtx, RoundReport, Trainer};
use saps_data::Dataset;
use saps_graph::topology::random_perfect_matching;
use saps_tensor::rng::{derive_seed, streams};

/// SAPS-PSGD's sparse single-peer exchange with uniformly random peer
/// selection. With an odd number of active workers one randomly chosen
/// worker idles each round (as in SAPS-PSGD's own odd-fleet behaviour).
pub struct RandomChoose {
    fleet: Fleet,
    compression: f64,
    rng: StdRng,
    round: u64,
    /// The per-round mask, regenerated in place to reuse its buffer.
    mask: RandomMask,
}

impl RandomChoose {
    /// Wraps a fleet with compression ratio `c`.
    pub fn new(fleet: Fleet, compression: f64, seed: u64) -> Result<Self, ConfigError> {
        if !(compression >= 1.0 && compression.is_finite()) {
            return Err(ConfigError::invalid(
                "RandomChoose",
                format!("compression {compression} must be a finite ratio >= 1"),
            ));
        }
        let mask = RandomMask::from_indices(fleet.n_params(), Vec::new());
        Ok(RandomChoose {
            fleet,
            compression,
            rng: StdRng::seed_from_u64(derive_seed(seed, 2, streams::MATCHING)),
            round: 0,
            mask,
        })
    }

    /// This round's random pairs over the active ranks (global rank
    /// space). With an odd active count one random worker sits out.
    fn random_pairs(&mut self) -> Vec<(usize, usize)> {
        let mut ranks = self.fleet.active_ranks();
        let m = ranks.len();
        if m < 2 {
            return Vec::new();
        }
        if m.is_multiple_of(2) {
            // Even: exactly the historical uniformly-random perfect
            // matching over active-subset positions.
            let matching = random_perfect_matching(m, &mut self.rng);
            matching
                .pairs()
                .iter()
                .map(|&(i, j)| (ranks[i], ranks[j]))
                .collect()
        } else {
            // Odd: shuffle and pair consecutively, leaving one out.
            ranks.shuffle(&mut self.rng);
            ranks.chunks_exact(2).map(|c| (c[0], c[1])).collect()
        }
    }
}

impl Trainer for RandomChoose {
    fn name(&self) -> &'static str {
        "RandomChoose"
    }

    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> RoundReport {
        let bw = ctx.bw;
        let exec = ctx.exec;
        let traffic = &mut *ctx.traffic;
        let n_params = self.fleet.n_params();
        let (loss, acc) = self.fleet.sgd_step_all_on(&exec);

        let pairs = self.random_pairs();
        self.mask
            .regenerate(n_params, self.compression, self.rng.gen(), self.round);
        let mask = &self.mask;
        let payload_bytes = codec::sparse_shared_mask_bytes(mask.nnz());

        let mut transfers = Vec::new();
        let mut link_sum = 0.0f64;
        let mut link_min = f64::INFINITY;
        for &(i, j) in &pairs {
            let pi = self.fleet.worker(i).sparse_payload(mask);
            let pj = self.fleet.worker(j).sparse_payload(mask);
            self.fleet.worker_mut(i).merge_sparse(mask, &pj);
            self.fleet.worker_mut(j).merge_sparse(mask, &pi);
            traffic.record_p2p(i, j, payload_bytes);
            traffic.record_p2p(j, i, payload_bytes);
            transfers.push((i, j, payload_bytes));
            transfers.push((j, i, payload_bytes));
            link_sum += bw.get(i, j);
            link_min = link_min.min(bw.get(i, j));
        }
        traffic.end_round();
        self.round += 1;
        let timing = ctx.price_p2p(&transfers);

        let mut rep = RoundReport::new();
        rep.mean_loss = loss;
        rep.mean_acc = acc;
        rep.set_timing(&timing);
        rep.epochs_advanced = self.fleet.epochs_per_round();
        rep.mean_link_bandwidth = if pairs.is_empty() {
            0.0
        } else {
            link_sum / pairs.len() as f64
        };
        rep.min_link_bandwidth = if pairs.is_empty() { 0.0 } else { link_min };
        rep
    }

    fn evaluate(&mut self, val: &Dataset, max_samples: usize) -> f32 {
        self.fleet.evaluate_average(val, max_samples)
    }

    fn model_len(&self) -> usize {
        self.fleet.n_params()
    }

    fn worker_count(&self) -> usize {
        self.fleet.len()
    }

    fn set_worker_active(&mut self, rank: usize, active: bool) -> Result<(), ConfigError> {
        self.fleet.set_active(rank, active, 2)
    }

    fn export_checkpoint(&mut self) -> Result<Vec<u8>, ConfigError> {
        let avg = self.fleet.average_model();
        Ok(saps_core::checkpoint::encode(&avg, self.round).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::SyntheticSpec;
    use saps_netsim::{BandwidthMatrix, TrafficAccountant};
    use saps_nn::zoo;

    fn setup(n: usize, c: f64) -> (RandomChoose, Dataset, BandwidthMatrix) {
        let ds = SyntheticSpec::tiny().samples(1_200).generate(1);
        let (train, val) = ds.split(0.25, 0);
        let fleet = Fleet::new(n, &train, |rng| zoo::mlp(&[16, 24, 4], rng), 3, 16, 0.1).unwrap();
        (
            RandomChoose::new(fleet, c, 7).unwrap(),
            val,
            BandwidthMatrix::constant(n, 1.0),
        )
    }

    #[test]
    fn every_worker_exchanges_once() {
        let (mut algo, _, bw) = setup(6, 4.0);
        let mut t = TrafficAccountant::new(6);
        algo.round(&mut t, &bw);
        let sent0 = t.worker_sent(0);
        assert!(sent0 > 0);
        for r in 1..6 {
            assert_eq!(t.worker_sent(r), sent0);
        }
    }

    #[test]
    fn odd_active_count_idles_one_worker_per_round() {
        let (mut algo, _, bw) = setup(6, 4.0);
        algo.set_worker_active(5, false).unwrap();
        let mut t = TrafficAccountant::new(6);
        for _ in 0..20 {
            let rep = algo.round(&mut t, &bw);
            assert!(rep.mean_loss.is_finite());
            // 5 active -> 2 pairs per round.
            assert_eq!(t.rounds().last().unwrap().total_sent % 4, 0);
        }
        assert_eq!(t.worker_total(5), 0, "inactive worker exchanged");
        // Over 20 rounds every active worker got matched at least once.
        for r in 0..5 {
            assert!(t.worker_sent(r) > 0, "worker {r} never exchanged");
        }
    }

    #[test]
    fn converges_like_saps() {
        let (mut algo, val, bw) = setup(4, 4.0);
        let mut t = TrafficAccountant::new(4);
        for _ in 0..120 {
            algo.round(&mut t, &bw);
        }
        let acc = algo.evaluate(&val, 300);
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn same_traffic_as_saps_per_round() {
        use saps_core::{SapsConfig, SapsPsgd};
        let ds = SyntheticSpec::tiny().samples(800).generate(1);
        let (train, _) = ds.split(0.25, 0);
        let bw = BandwidthMatrix::constant(4, 1.0);
        let fleet = Fleet::new(4, &train, |rng| zoo::mlp(&[16, 24, 4], rng), 3, 16, 0.1).unwrap();
        let mut rc = RandomChoose::new(fleet, 4.0, 7).unwrap();
        let cfg = SapsConfig {
            workers: 4,
            compression: 4.0,
            lr: 0.1,
            batch_size: 16,
            seed: 3,
            ..SapsConfig::default()
        };
        let mut saps = SapsPsgd::new(cfg, &train, &bw, |rng| zoo::mlp(&[16, 24, 4], rng)).unwrap();
        let mut t1 = TrafficAccountant::new(4);
        let mut t2 = TrafficAccountant::new(4);
        for _ in 0..20 {
            rc.round(&mut t1, &bw);
            saps.round(&mut t2, &bw);
        }
        // Same payload scheme: totals agree within mask sampling noise.
        let ratio = t1.worker_total(0) as f64 / t2.worker_total(0) as f64;
        assert!((ratio - 1.0).abs() < 0.15, "ratio {ratio}");
    }
}
