//! DCD-PSGD: difference-compressed decentralized SGD on a ring \[26\].

use crate::Fleet;
use saps_compress::codec;
use saps_compress::topk::{densify, top_k_indices};
use saps_core::{ConfigError, RoundCtx, RoundReport, Trainer};
use saps_data::Dataset;
use saps_graph::topology;

/// DCD-PSGD on the fixed ring: each worker maintains a **replica** of
/// each neighbour's model (the memory cost the paper criticizes) and
/// broadcasts only the top `N/c` coordinates of the *difference* between
/// its current model and what its neighbours last saw. Neighbours patch
/// their replicas with the sparse difference, then every worker mixes
/// with the replica average.
///
/// The paper finds DCD-PSGD tolerates only mild compression (`c = 4`);
/// larger `c` diverges — our convergence tests confirm `c = 4` trains
/// while traffic stays `4·np·N/c` per Table I. Under churn the ring
/// closes over the surviving active ranks; per-rank broadcast replicas
/// are kept, so a returning worker resumes from its last broadcast
/// state.
pub struct DcdPsgd {
    fleet: Fleet,
    compression: f64,
    /// `broadcast[r]` = the model state of worker `r` as known by its
    /// neighbours (all neighbours see the same broadcast stream).
    broadcast: Vec<Vec<f32>>,
    rounds: u64,
}

impl DcdPsgd {
    /// Wraps a fleet with compression ratio `c` (the paper uses 4).
    pub fn new(fleet: Fleet, compression: f64) -> Result<Self, ConfigError> {
        if fleet.len() < 3 {
            return Err(ConfigError::invalid(
                "DcdPsgd",
                "DCD-PSGD ring needs at least 3 workers",
            ));
        }
        if !(compression >= 1.0 && compression.is_finite()) {
            return Err(ConfigError::invalid(
                "DcdPsgd",
                format!("compression {compression} must be a finite ratio >= 1"),
            ));
        }
        let broadcast = (0..fleet.len()).map(|r| fleet.worker(r).flat()).collect();
        Ok(DcdPsgd {
            fleet,
            compression,
            broadcast,
            rounds: 0,
        })
    }

    /// The compression ratio in use.
    pub fn compression(&self) -> f64 {
        self.compression
    }
}

impl Trainer for DcdPsgd {
    fn name(&self) -> &'static str {
        "DCD-PSGD"
    }

    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> RoundReport {
        let bw = ctx.bw;
        let exec = ctx.exec;
        let traffic = &mut *ctx.traffic;
        let ranks = self.fleet.active_ranks();
        let m = ranks.len();
        let n_params = self.fleet.n_params();
        let k = ((n_params as f64 / self.compression).round() as usize).max(1);
        let (loss, acc) = self.fleet.sgd_step_all_on(&exec);

        // Each active worker compresses (x_i − broadcast_i) and updates
        // its own broadcast state; neighbours apply the identical patch.
        // Worker r touches only broadcast[r], so the diff + top-k fans
        // out with the compute phase.
        let payload_nnz = {
            let fleet = &self.fleet;
            let bcast_items = crate::select_ranked_mut(&mut self.broadcast, &ranks);
            exec.par_map(bcast_items, |_, (r, bcast)| {
                let x = fleet.worker(r).flat();
                let diff: Vec<f32> = x.iter().zip(bcast.iter()).map(|(a, b)| a - b).collect();
                let idx = top_k_indices(&diff, k);
                let vals: Vec<f32> = idx.iter().map(|&i| diff[i as usize]).collect();
                let sparse = densify(n_params, &idx, &vals);
                for (b, s) in bcast.iter_mut().zip(&sparse) {
                    *b += s;
                }
                idx.len()
            })
        };
        let payload_bytes = payload_nnz
            .last()
            .map_or(0, |&nnz| codec::sparse_iv_bytes(nnz));

        // Mixing with replica averages over the active ring:
        // x_i ← (x̂_{i−1} + x_i + x̂_{i+1})/3. Reads only the (now
        // settled) broadcast replicas, writes only worker i — parallel
        // per lane.
        let broadcast = &self.broadcast;
        let items = self.fleet.workers_mut_at(&ranks);
        exec.par_map(items, |i, (_, w)| {
            let prev = &broadcast[ranks[(i + m - 1) % m]];
            let next = &broadcast[ranks[(i + 1) % m]];
            w.update_flat(|flat| {
                for p in 0..flat.len() {
                    flat[p] = (prev[p] + flat[p] + next[p]) / 3.0;
                }
            });
        });

        // Traffic: each active worker sends its sparse diff to both ring
        // neighbours.
        let mut transfers = Vec::with_capacity(2 * m);
        for i in 0..m {
            for peer in [ranks[(i + 1) % m], ranks[(i + m - 1) % m]] {
                traffic.record_p2p(ranks[i], peer, payload_bytes);
                transfers.push((ranks[i], peer, payload_bytes));
            }
        }
        traffic.end_round();
        let timing = ctx.price_p2p(&transfers);

        let ring = topology::ring_edges_over(&ranks);
        let mean_link = ring.iter().map(|&(a, b)| bw.get(a, b)).sum::<f64>() / ring.len() as f64;
        let min_link = ring
            .iter()
            .map(|&(a, b)| bw.get(a, b))
            .fold(f64::INFINITY, f64::min);
        let mut rep = RoundReport::new();
        rep.mean_loss = loss;
        rep.mean_acc = acc;
        rep.set_timing(&timing);
        rep.epochs_advanced = self.fleet.epochs_per_round();
        rep.mean_link_bandwidth = mean_link;
        rep.min_link_bandwidth = min_link;
        self.rounds += 1;
        rep
    }

    fn evaluate(&mut self, val: &Dataset, max_samples: usize) -> f32 {
        self.fleet.evaluate_average(val, max_samples)
    }

    fn model_len(&self) -> usize {
        self.fleet.n_params()
    }

    fn worker_count(&self) -> usize {
        self.fleet.len()
    }

    fn set_worker_active(&mut self, rank: usize, active: bool) -> Result<(), ConfigError> {
        self.fleet.set_active(rank, active, 3)?;
        if active {
            // A returning worker's neighbours resume from its broadcast
            // state; re-anchor the broadcast to its actual (frozen) model
            // so the first diff after rejoin is small and honest.
            self.broadcast[rank] = self.fleet.worker(rank).flat();
        }
        Ok(())
    }

    fn export_checkpoint(&mut self) -> Result<Vec<u8>, ConfigError> {
        let avg = self.fleet.average_model();
        Ok(saps_core::checkpoint::encode(&avg, self.rounds).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::SyntheticSpec;
    use saps_netsim::{BandwidthMatrix, TrafficAccountant};
    use saps_nn::zoo;

    fn setup(n: usize, c: f64) -> (DcdPsgd, Dataset, BandwidthMatrix) {
        let ds = SyntheticSpec::tiny().samples(1_200).generate(1);
        let (train, val) = ds.split(0.25, 0);
        let fleet = Fleet::new(n, &train, |rng| zoo::mlp(&[16, 24, 4], rng), 3, 16, 0.1).unwrap();
        (
            DcdPsgd::new(fleet, c).unwrap(),
            val,
            BandwidthMatrix::constant(n, 1.0),
        )
    }

    #[test]
    fn traffic_is_compressed() {
        let (mut algo, _, bw) = setup(4, 4.0);
        let mut t = TrafficAccountant::new(4);
        algo.round(&mut t, &bw);
        let k = (algo.model_len() as f64 / 4.0).round() as usize;
        assert_eq!(t.worker_sent(0), 2 * codec::sparse_iv_bytes(k));
    }

    #[test]
    fn converges_with_c4() {
        let (mut algo, val, bw) = setup(4, 4.0);
        let mut t = TrafficAccountant::new(4);
        for _ in 0..150 {
            algo.round(&mut t, &bw);
        }
        let acc = algo.evaluate(&val, 300);
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn broadcast_replicas_track_models() {
        // The replica error ‖x_i − broadcast_i‖ must stay bounded: each
        // round's top-k patch removes the largest discrepancies.
        let (mut algo, _, bw) = setup(4, 4.0);
        let mut t = TrafficAccountant::new(4);
        for _ in 0..30 {
            algo.round(&mut t, &bw);
        }
        for r in 0..4 {
            let x = algo.fleet.worker(r).flat();
            let err: f32 = x
                .iter()
                .zip(&algo.broadcast[r])
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max);
            assert!(err < 1.0, "replica error {err} at worker {r}");
        }
    }

    #[test]
    fn churn_survivors_keep_training() {
        let (mut algo, val, bw) = setup(5, 4.0);
        let mut t = TrafficAccountant::new(5);
        for _ in 0..20 {
            algo.round(&mut t, &bw);
        }
        algo.set_worker_active(4, false).unwrap();
        for _ in 0..40 {
            let rep = algo.round(&mut t, &bw);
            assert!(rep.mean_loss.is_finite());
        }
        algo.set_worker_active(4, true).unwrap();
        for _ in 0..40 {
            algo.round(&mut t, &bw);
        }
        let acc = algo.evaluate(&val, 300);
        assert!(acc > 0.4, "post-churn accuracy {acc}");
    }

    #[test]
    fn cheaper_than_dpsgd() {
        use crate::DPsgd;
        let (mut dcd, _, bw) = setup(4, 4.0);
        let ds = SyntheticSpec::tiny().samples(1_200).generate(1);
        let (train, _) = ds.split(0.25, 0);
        let fleet = Fleet::new(4, &train, |rng| zoo::mlp(&[16, 24, 4], rng), 3, 16, 0.1).unwrap();
        let mut dp = DPsgd::new(fleet).unwrap();
        let mut t1 = TrafficAccountant::new(4);
        let mut t2 = TrafficAccountant::new(4);
        dcd.round(&mut t1, &bw);
        dp.round(&mut t2, &bw);
        assert!(t1.worker_total(0) < t2.worker_total(0));
    }
}
