//! DCD-PSGD: difference-compressed decentralized SGD on a ring [26].

use crate::Fleet;
use saps_compress::codec;
use saps_compress::topk::{densify, top_k_indices};
use saps_core::{RoundReport, Trainer};
use saps_data::Dataset;
use saps_graph::topology;
use saps_netsim::{timemodel, BandwidthMatrix, TrafficAccountant};

/// DCD-PSGD on the fixed ring: each worker maintains a **replica** of
/// each neighbour's model (the memory cost the paper criticizes) and
/// broadcasts only the top `N/c` coordinates of the *difference* between
/// its current model and what its neighbours last saw. Neighbours patch
/// their replicas with the sparse difference, then every worker mixes
/// with the replica average.
///
/// The paper finds DCD-PSGD tolerates only mild compression (`c = 4`);
/// larger `c` diverges — our convergence tests confirm `c = 4` trains
/// while traffic stays `4·np·N/c` per Table I.
pub struct DcdPsgd {
    fleet: Fleet,
    compression: f64,
    /// `broadcast[r]` = the model state of worker `r` as known by its
    /// neighbours (all neighbours see the same broadcast stream).
    broadcast: Vec<Vec<f32>>,
}

impl DcdPsgd {
    /// Wraps a fleet with compression ratio `c` (the paper uses 4).
    pub fn new(fleet: Fleet, compression: f64) -> Self {
        assert!(fleet.len() >= 3, "DCD-PSGD ring needs at least 3 workers");
        assert!(compression >= 1.0);
        let broadcast = (0..fleet.len()).map(|r| fleet.worker(r).flat()).collect();
        DcdPsgd {
            fleet,
            compression,
            broadcast,
        }
    }

    /// The compression ratio in use.
    pub fn compression(&self) -> f64 {
        self.compression
    }
}

impl Trainer for DcdPsgd {
    fn name(&self) -> &'static str {
        "DCD-PSGD"
    }

    fn round(&mut self, traffic: &mut TrafficAccountant, bw: &BandwidthMatrix) -> RoundReport {
        let n = self.fleet.len();
        let n_params = self.fleet.n_params();
        let k = ((n_params as f64 / self.compression).round() as usize).max(1);
        let (loss, acc) = self.fleet.sgd_step_all();

        // Each worker compresses (x_i − broadcast_i) and updates its own
        // broadcast state; neighbours apply the identical patch.
        let mut payload_bytes = 0u64;
        for r in 0..n {
            let x = self.fleet.worker(r).flat();
            let diff: Vec<f32> = x
                .iter()
                .zip(&self.broadcast[r])
                .map(|(a, b)| a - b)
                .collect();
            let idx = top_k_indices(&diff, k);
            let vals: Vec<f32> = idx.iter().map(|&i| diff[i as usize]).collect();
            let sparse = densify(n_params, &idx, &vals);
            for (b, s) in self.broadcast[r].iter_mut().zip(&sparse) {
                *b += s;
            }
            payload_bytes = codec::sparse_iv_bytes(idx.len());
        }

        // Mixing with replica averages: x_i ← (x̂_{i−1} + x_i + x̂_{i+1})/3.
        let mut mixed_all = Vec::with_capacity(n);
        for r in 0..n {
            let prev = &self.broadcast[(r + n - 1) % n];
            let next = &self.broadcast[(r + 1) % n];
            let me = self.fleet.worker(r).flat();
            let mixed: Vec<f32> = (0..n_params)
                .map(|i| (prev[i] + me[i] + next[i]) / 3.0)
                .collect();
            mixed_all.push(mixed);
        }
        for (r, mixed) in mixed_all.into_iter().enumerate() {
            self.fleet.worker_mut(r).set_flat(&mixed);
        }

        // Traffic: each worker sends its sparse diff to both neighbours.
        let mut transfers = Vec::with_capacity(2 * n);
        for r in 0..n {
            for peer in [(r + 1) % n, (r + n - 1) % n] {
                traffic.record_p2p(r, peer, payload_bytes);
                transfers.push((r, peer, payload_bytes));
            }
        }
        traffic.end_round();
        let comm_time_s = timemodel::p2p_round_time(bw, &transfers);

        let ring = topology::ring_edges(n);
        let mean_link = ring.iter().map(|&(a, b)| bw.get(a, b)).sum::<f64>() / ring.len() as f64;
        let min_link = ring
            .iter()
            .map(|&(a, b)| bw.get(a, b))
            .fold(f64::INFINITY, f64::min);
        RoundReport {
            mean_loss: loss,
            mean_acc: acc,
            comm_time_s,
            epochs_advanced: self.fleet.epochs_per_round(),
            mean_link_bandwidth: mean_link,
            min_link_bandwidth: min_link,
        }
    }

    fn evaluate(&mut self, val: &Dataset, max_samples: usize) -> f32 {
        self.fleet.evaluate_average(val, max_samples)
    }

    fn model_len(&self) -> usize {
        self.fleet.n_params()
    }

    fn worker_count(&self) -> usize {
        self.fleet.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::SyntheticSpec;
    use saps_nn::zoo;

    fn setup(n: usize, c: f64) -> (DcdPsgd, Dataset, BandwidthMatrix) {
        let ds = SyntheticSpec::tiny().samples(1_200).generate(1);
        let (train, val) = ds.split(0.25, 0);
        let fleet = Fleet::new(n, &train, |rng| zoo::mlp(&[16, 24, 4], rng), 3, 16, 0.1);
        (
            DcdPsgd::new(fleet, c),
            val,
            BandwidthMatrix::constant(n, 1.0),
        )
    }

    #[test]
    fn traffic_is_compressed() {
        let (mut algo, _, bw) = setup(4, 4.0);
        let mut t = TrafficAccountant::new(4);
        algo.round(&mut t, &bw);
        let k = (algo.model_len() as f64 / 4.0).round() as usize;
        assert_eq!(t.worker_sent(0), 2 * codec::sparse_iv_bytes(k));
    }

    #[test]
    fn converges_with_c4() {
        let (mut algo, val, bw) = setup(4, 4.0);
        let mut t = TrafficAccountant::new(4);
        for _ in 0..150 {
            algo.round(&mut t, &bw);
        }
        let acc = algo.evaluate(&val, 300);
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn broadcast_replicas_track_models() {
        // The replica error ‖x_i − broadcast_i‖ must stay bounded: each
        // round's top-k patch removes the largest discrepancies.
        let (mut algo, _, bw) = setup(4, 4.0);
        let mut t = TrafficAccountant::new(4);
        for _ in 0..30 {
            algo.round(&mut t, &bw);
        }
        for r in 0..4 {
            let x = algo.fleet.worker(r).flat();
            let err: f32 = x
                .iter()
                .zip(&algo.broadcast[r])
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max);
            assert!(err < 1.0, "replica error {err} at worker {r}");
        }
    }

    #[test]
    fn cheaper_than_dpsgd() {
        use crate::DPsgd;
        let (mut dcd, _, bw) = setup(4, 4.0);
        let ds = SyntheticSpec::tiny().samples(1_200).generate(1);
        let (train, _) = ds.split(0.25, 0);
        let fleet = Fleet::new(4, &train, |rng| zoo::mlp(&[16, 24, 4], rng), 3, 16, 0.1);
        let mut dp = DPsgd::new(fleet);
        let mut t1 = TrafficAccountant::new(4);
        let mut t2 = TrafficAccountant::new(4);
        dcd.round(&mut t1, &bw);
        dp.round(&mut t2, &bw);
        assert!(t1.worker_total(0) < t2.worker_total(0));
    }
}
