//! The full eight-algorithm registry.
//!
//! `saps-core` can only register SAPS-PSGD itself (the baselines live
//! above it in the crate graph); this module contributes the seven
//! comparison algorithms and exposes [`registry`] — the registry every
//! binary, example and test hands to [`saps_core::Experiment::run`].

use crate::{
    DPsgd, DcdPsgd, FedAvg, FedAvgConfig, Fleet, PsgdAllReduce, RandomChoose, SFedAvg, TopKPsgd,
};
use saps_core::{AlgorithmRegistry, AlgorithmSpec, BuildCtx, ConfigError, Trainer};

/// The complete registry: SAPS-PSGD plus all seven baselines.
pub fn registry() -> AlgorithmRegistry {
    let mut reg = AlgorithmRegistry::core();
    register_baselines(&mut reg);
    reg
}

/// Adds the seven baseline builders to an existing registry.
pub fn register_baselines(reg: &mut AlgorithmRegistry) {
    reg.register("psgd", build_psgd);
    reg.register("topk", build_topk);
    reg.register("fedavg", build_fedavg);
    reg.register("sfedavg", build_sfedavg);
    reg.register("dpsgd", build_dpsgd);
    reg.register("dcd", build_dcd);
    reg.register("random", build_random);
}

fn fleet(ctx: BuildCtx<'_>) -> Result<Fleet, ConfigError> {
    let factory = ctx.factory.clone();
    Fleet::with_partitions(
        ctx.partitions,
        move |rng| factory(rng),
        ctx.seed,
        ctx.batch_size,
        ctx.lr,
    )
}

fn build_psgd(spec: &AlgorithmSpec, ctx: BuildCtx<'_>) -> Result<Box<dyn Trainer>, ConfigError> {
    let AlgorithmSpec::Psgd = spec else {
        return Err(ConfigError::UnknownAlgorithm(spec.key().to_string()));
    };
    Ok(Box::new(PsgdAllReduce::new(fleet(ctx)?)?))
}

fn build_topk(spec: &AlgorithmSpec, ctx: BuildCtx<'_>) -> Result<Box<dyn Trainer>, ConfigError> {
    let AlgorithmSpec::TopK { compression } = *spec else {
        return Err(ConfigError::UnknownAlgorithm(spec.key().to_string()));
    };
    Ok(Box::new(TopKPsgd::new(fleet(ctx)?, compression)?))
}

fn build_fedavg(spec: &AlgorithmSpec, ctx: BuildCtx<'_>) -> Result<Box<dyn Trainer>, ConfigError> {
    let AlgorithmSpec::FedAvg {
        participation,
        local_steps,
    } = *spec
    else {
        return Err(ConfigError::UnknownAlgorithm(spec.key().to_string()));
    };
    let seed = ctx.seed;
    let cfg = FedAvgConfig {
        participation,
        local_steps,
    };
    Ok(Box::new(FedAvg::new(fleet(ctx)?, cfg, seed)?))
}

fn build_sfedavg(spec: &AlgorithmSpec, ctx: BuildCtx<'_>) -> Result<Box<dyn Trainer>, ConfigError> {
    let AlgorithmSpec::SFedAvg {
        participation,
        local_steps,
        compression,
    } = *spec
    else {
        return Err(ConfigError::UnknownAlgorithm(spec.key().to_string()));
    };
    let seed = ctx.seed;
    Ok(Box::new(SFedAvg::new(
        fleet(ctx)?,
        participation,
        local_steps,
        compression,
        seed,
    )?))
}

fn build_dpsgd(spec: &AlgorithmSpec, ctx: BuildCtx<'_>) -> Result<Box<dyn Trainer>, ConfigError> {
    let AlgorithmSpec::DPsgd = spec else {
        return Err(ConfigError::UnknownAlgorithm(spec.key().to_string()));
    };
    Ok(Box::new(DPsgd::new(fleet(ctx)?)?))
}

fn build_dcd(spec: &AlgorithmSpec, ctx: BuildCtx<'_>) -> Result<Box<dyn Trainer>, ConfigError> {
    let AlgorithmSpec::DcdPsgd { compression } = *spec else {
        return Err(ConfigError::UnknownAlgorithm(spec.key().to_string()));
    };
    Ok(Box::new(DcdPsgd::new(fleet(ctx)?, compression)?))
}

fn build_random(spec: &AlgorithmSpec, ctx: BuildCtx<'_>) -> Result<Box<dyn Trainer>, ConfigError> {
    let AlgorithmSpec::RandomChoose { compression } = *spec else {
        return Err(ConfigError::UnknownAlgorithm(spec.key().to_string()));
    };
    let seed = ctx.seed;
    Ok(Box::new(RandomChoose::new(fleet(ctx)?, compression, seed)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::{partition, SyntheticSpec};
    use saps_netsim::BandwidthMatrix;
    use saps_nn::zoo;
    use saps_tensor::rng::{derive_seed, streams};
    use std::sync::Arc;

    fn ctx(bw: &BandwidthMatrix, workers: usize) -> BuildCtx<'_> {
        let ds = SyntheticSpec::tiny().samples(600).generate(1);
        BuildCtx {
            partitions: partition::iid(&ds, workers, derive_seed(0, 0, streams::DATA)),
            bw,
            batch_size: 16,
            lr: 0.1,
            seed: 0,
            factory: Arc::new(|rng| zoo::mlp(&[16, 12, 4], rng)),
        }
    }

    #[test]
    fn registry_knows_all_eight_algorithms() {
        let reg = registry();
        let keys: Vec<&str> = reg.keys().collect();
        assert_eq!(
            keys,
            vec!["dcd", "dpsgd", "fedavg", "psgd", "random", "saps", "sfedavg", "topk"]
        );
    }

    #[test]
    fn every_paper_spec_builds_and_reports_its_label() {
        let reg = registry();
        let bw = BandwidthMatrix::constant(4, 1.0);
        for spec in AlgorithmSpec::paper_defaults() {
            let trainer = reg.build(&spec, ctx(&bw, 4)).unwrap();
            assert_eq!(trainer.name(), spec.label());
            assert_eq!(trainer.worker_count(), 4);
            assert!(trainer.model_len() > 0);
        }
    }

    #[test]
    fn builders_reject_mismatched_specs() {
        let bw = BandwidthMatrix::constant(4, 1.0);
        assert!(build_psgd(&AlgorithmSpec::DPsgd, ctx(&bw, 4)).is_err());
        assert!(build_topk(&AlgorithmSpec::Psgd, ctx(&bw, 4)).is_err());
    }
}
