//! PSGD with ring all-reduce — the classical dense baseline.

use crate::allreduce::{ring_reduce_mean, ring_send_bytes};
use crate::Fleet;
use saps_core::{ConfigError, RoundCtx, RoundReport, Trainer};
use saps_data::Dataset;
use saps_graph::topology;
use saps_tensor::scratch::BufferPool;

/// Synchronous parallel SGD: every round the active workers' gradients
/// are globally averaged by a ring all-reduce and each replica applies
/// the same update (Eq. 1), so replicas stay bit-identical.
///
/// Traffic: a ring all-reduce moves `2·(n−1)/n · N` parameters through
/// each worker per round (reduce-scatter + all-gather), ≈ the `2N` of
/// Table I. The mean is folded in the exact chunk-rotated order the
/// ring schedule produces (see [`crate::allreduce`]), so the cluster
/// wire driver that really frames every hop reproduces these bits.
/// A worker that re-joins after churn is resynced from a live replica,
/// preserving the bit-identical invariant.
pub struct PsgdAllReduce {
    fleet: Fleet,
    /// Scratch for the per-round mean gradient, reused across rounds.
    pool: BufferPool,
    rounds: u64,
}

impl PsgdAllReduce {
    /// Wraps a fleet.
    pub fn new(fleet: Fleet) -> Result<Self, ConfigError> {
        Ok(PsgdAllReduce {
            fleet,
            pool: BufferPool::new(),
            rounds: 0,
        })
    }
}

impl Trainer for PsgdAllReduce {
    fn name(&self) -> &'static str {
        "PSGD"
    }

    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> RoundReport {
        let bw = ctx.bw;
        let exec = ctx.exec;
        let traffic = &mut *ctx.traffic;
        let ranks = self.fleet.active_ranks();
        let m = ranks.len();
        let (loss, acc) = self.fleet.accumulate_grads_all_on(&exec);

        // Global gradient average via the ring all-reduce schedule: one
        // gradient per ring position (= ascending active rank), folded
        // per chunk exactly as the hop-by-hop wire exchange folds it.
        let n_params = self.fleet.n_params();
        let grads: Vec<Vec<f32>> = ranks
            .iter()
            .map(|&r| self.fleet.worker(r).model().flat_grads())
            .collect();
        let mut mean_grad = self.pool.take_zeroed(n_params);
        ring_reduce_mean(&grads, &mut mean_grad);
        // Identical update on every active replica, fanned out (each
        // lane reads the shared mean and rewrites its own replica).
        let lr = self.fleet.lr;
        let mean = &mean_grad;
        let items = self.fleet.workers_mut_at(&ranks);
        exec.par_map(items, |_, (_, w)| {
            w.add_scaled(-lr, mean);
            w.model_mut().zero_grads();
        });
        self.pool.give(mean_grad);

        // Ring all-reduce traffic over the active ring: position i
        // forwards 2(m−1) chunks to its ring successor (chunk sizes vary
        // by at most one element when m ∤ N).
        let mut per_worker_max = 0u64;
        for i in 0..m {
            let bytes = ring_send_bytes(n_params, m, i);
            per_worker_max = per_worker_max.max(bytes);
            traffic.record_p2p(ranks[i], ranks[(i + 1) % m], bytes);
        }
        traffic.end_round();
        // The slowest active ring link gates every all-reduce step.
        let timing = ctx.price_allreduce(&ranks, per_worker_max);
        let ring = topology::ring_edges_over(&ranks);
        let mean_link = ring.iter().map(|&(a, b)| bw.get(a, b)).sum::<f64>() / ring.len() as f64;
        let min_link = ring
            .iter()
            .map(|&(a, b)| bw.get(a, b))
            .fold(f64::INFINITY, f64::min);

        let mut rep = RoundReport::new();
        rep.mean_loss = loss;
        rep.mean_acc = acc;
        rep.set_timing(&timing);
        rep.epochs_advanced = self.fleet.epochs_per_round();
        rep.mean_link_bandwidth = mean_link;
        rep.min_link_bandwidth = min_link;
        self.rounds += 1;
        rep
    }

    fn evaluate(&mut self, val: &Dataset, max_samples: usize) -> f32 {
        // Active replicas are identical; evaluate the first one.
        let first = self.fleet.active_ranks()[0];
        let flat = self.fleet.worker(first).flat();
        self.fleet.evaluate_flat(&flat, val, max_samples)
    }

    fn export_checkpoint(&mut self) -> Result<Vec<u8>, ConfigError> {
        let first = self.fleet.active_ranks()[0];
        let flat = self.fleet.worker(first).flat();
        Ok(saps_core::checkpoint::encode(&flat, self.rounds).to_vec())
    }

    fn model_len(&self) -> usize {
        self.fleet.n_params()
    }

    fn worker_count(&self) -> usize {
        self.fleet.len()
    }

    fn set_worker_active(&mut self, rank: usize, active: bool) -> Result<(), ConfigError> {
        self.fleet.set_active(rank, active, 2)?;
        if active {
            // Resync the joiner so replicas stay bit-identical.
            let donor = self
                .fleet
                .active_ranks()
                .into_iter()
                .find(|&r| r != rank)
                .expect("at least two active workers");
            let flat = self.fleet.worker(donor).flat();
            let joiner = self.fleet.worker_mut(rank);
            joiner.set_flat(&flat);
            joiner.model_mut().zero_grads();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::SyntheticSpec;
    use saps_netsim::{BandwidthMatrix, TrafficAccountant};
    use saps_nn::zoo;

    fn setup(n: usize) -> (PsgdAllReduce, Dataset, BandwidthMatrix) {
        let ds = SyntheticSpec::tiny().samples(1_200).generate(1);
        let (train, val) = ds.split(0.25, 0);
        let fleet = Fleet::new(n, &train, |rng| zoo::mlp(&[16, 24, 4], rng), 3, 16, 0.1).unwrap();
        (
            PsgdAllReduce::new(fleet).unwrap(),
            val,
            BandwidthMatrix::constant(n, 1.0),
        )
    }

    #[test]
    fn replicas_stay_identical() {
        let (mut algo, _, bw) = setup(4);
        let mut t = TrafficAccountant::new(4);
        for _ in 0..5 {
            algo.round(&mut t, &bw);
        }
        let base = algo.fleet.worker(0).flat();
        for r in 1..4 {
            assert_eq!(base, algo.fleet.worker(r).flat());
        }
    }

    #[test]
    fn converges_fast() {
        let (mut algo, val, bw) = setup(4);
        let mut t = TrafficAccountant::new(4);
        for _ in 0..120 {
            algo.round(&mut t, &bw);
        }
        let acc = algo.evaluate(&val, 300);
        assert!(acc > 0.55, "accuracy {acc}");
    }

    #[test]
    fn traffic_matches_allreduce_formula() {
        let (mut algo, _, bw) = setup(4);
        let mut t = TrafficAccountant::new(4);
        algo.round(&mut t, &bw);
        let n_params = algo.model_len() as u64;
        let expect = 2 * 3 * (n_params * 4 / 4); // 2(n-1) chunks of N/n * 4 bytes
        assert_eq!(t.worker_sent(0), expect);
        assert_eq!(t.server_total(), 0);
    }

    #[test]
    fn round_time_positive() {
        let (mut algo, _, bw) = setup(4);
        let mut t = TrafficAccountant::new(4);
        let rep = algo.round(&mut t, &bw);
        assert!(rep.comm_time_s > 0.0);
    }

    #[test]
    fn rejoining_worker_is_resynced() {
        let (mut algo, _, bw) = setup(4);
        let mut t = TrafficAccountant::new(4);
        algo.round(&mut t, &bw);
        algo.set_worker_active(3, false).unwrap();
        for _ in 0..3 {
            algo.round(&mut t, &bw);
        }
        // The frozen replica is stale now.
        assert_ne!(algo.fleet.worker(3).flat(), algo.fleet.worker(0).flat());
        algo.set_worker_active(3, true).unwrap();
        assert_eq!(algo.fleet.worker(3).flat(), algo.fleet.worker(0).flat());
        algo.round(&mut t, &bw);
        // Identical again after the next synchronous round.
        assert_eq!(algo.fleet.worker(3).flat(), algo.fleet.worker(0).flat());
    }
}
