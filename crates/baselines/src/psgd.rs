//! PSGD with ring all-reduce — the classical dense baseline.

use crate::Fleet;
use saps_core::{RoundReport, Trainer};
use saps_data::Dataset;
use saps_netsim::{timemodel, BandwidthMatrix, TrafficAccountant};
use saps_tensor::ops;

/// Synchronous parallel SGD: every round the workers' gradients are
/// globally averaged by a ring all-reduce and each replica applies the
/// same update (Eq. 1), so replicas stay bit-identical.
///
/// Traffic: a ring all-reduce moves `2·(n−1)/n · N` parameters through
/// each worker per round (reduce-scatter + all-gather), ≈ the `2N` of
/// Table I.
pub struct PsgdAllReduce {
    fleet: Fleet,
}

impl PsgdAllReduce {
    /// Wraps a fleet.
    pub fn new(fleet: Fleet) -> Self {
        PsgdAllReduce { fleet }
    }
}

impl Trainer for PsgdAllReduce {
    fn name(&self) -> &'static str {
        "PSGD"
    }

    fn round(&mut self, traffic: &mut TrafficAccountant, bw: &BandwidthMatrix) -> RoundReport {
        let n = self.fleet.len();
        let (loss, acc) = self.fleet.accumulate_grads_all();

        // Global gradient average.
        let n_params = self.fleet.n_params();
        let mut mean_grad = vec![0.0f32; n_params];
        for r in 0..n {
            let g = self.fleet.worker(r).model().flat_grads();
            ops::axpy(1.0, &g, &mut mean_grad);
        }
        let inv = 1.0 / n as f32;
        for g in &mut mean_grad {
            *g *= inv;
        }
        // Identical update on every replica.
        let lr = self.fleet.lr;
        for r in 0..n {
            let w = self.fleet.worker_mut(r);
            let mut flat = w.flat();
            ops::axpy(-lr, &mean_grad, &mut flat);
            w.set_flat(&flat);
            w.model_mut().zero_grads();
        }

        // Ring all-reduce traffic: each worker forwards 2(n-1) chunks of
        // N/n parameters to its ring successor.
        let chunk_bytes = (n_params as u64 * 4) / n as u64;
        let per_worker = 2 * (n as u64 - 1) * chunk_bytes;
        for r in 0..n {
            traffic.record_p2p(r, (r + 1) % n, per_worker);
        }
        traffic.end_round();
        let comm_time_s = timemodel::allreduce_ring_time(bw, per_worker);

        // Fig. 5 reports the *links used*; for the ring that is the mean
        // ring-link bandwidth.
        let mean_link = (0..n).map(|i| bw.get(i, (i + 1) % n)).sum::<f64>() / n as f64;
        let min_link = (0..n)
            .map(|i| bw.get(i, (i + 1) % n))
            .fold(f64::INFINITY, f64::min);
        RoundReport {
            mean_loss: loss,
            mean_acc: acc,
            comm_time_s,
            epochs_advanced: self.fleet.epochs_per_round(),
            mean_link_bandwidth: mean_link,
            min_link_bandwidth: min_link,
        }
    }

    fn evaluate(&mut self, val: &Dataset, max_samples: usize) -> f32 {
        // Replicas are identical; evaluate worker 0's model.
        let flat = self.fleet.worker(0).flat();
        self.fleet.evaluate_flat(&flat, val, max_samples)
    }

    fn model_len(&self) -> usize {
        self.fleet.n_params()
    }

    fn worker_count(&self) -> usize {
        self.fleet.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::SyntheticSpec;
    use saps_nn::zoo;

    fn setup(n: usize) -> (PsgdAllReduce, Dataset, BandwidthMatrix) {
        let ds = SyntheticSpec::tiny().samples(1_200).generate(1);
        let (train, val) = ds.split(0.25, 0);
        let fleet = Fleet::new(n, &train, |rng| zoo::mlp(&[16, 24, 4], rng), 3, 16, 0.1);
        (
            PsgdAllReduce::new(fleet),
            val,
            BandwidthMatrix::constant(n, 1.0),
        )
    }

    #[test]
    fn replicas_stay_identical() {
        let (mut algo, _, bw) = setup(4);
        let mut t = TrafficAccountant::new(4);
        for _ in 0..5 {
            algo.round(&mut t, &bw);
        }
        let base = algo.fleet.worker(0).flat();
        for r in 1..4 {
            assert_eq!(base, algo.fleet.worker(r).flat());
        }
    }

    #[test]
    fn converges_fast() {
        let (mut algo, val, bw) = setup(4);
        let mut t = TrafficAccountant::new(4);
        for _ in 0..120 {
            algo.round(&mut t, &bw);
        }
        let acc = algo.evaluate(&val, 300);
        assert!(acc > 0.55, "accuracy {acc}");
    }

    #[test]
    fn traffic_matches_allreduce_formula() {
        let (mut algo, _, bw) = setup(4);
        let mut t = TrafficAccountant::new(4);
        algo.round(&mut t, &bw);
        let n_params = algo.model_len() as u64;
        let expect = 2 * 3 * (n_params * 4 / 4); // 2(n-1) chunks of N/n * 4 bytes
        assert_eq!(t.worker_sent(0), expect);
        assert_eq!(t.server_total(), 0);
    }

    #[test]
    fn round_time_positive() {
        let (mut algo, _, bw) = setup(4);
        let mut t = TrafficAccountant::new(4);
        let rep = algo.round(&mut t, &bw);
        assert!(rep.comm_time_s > 0.0);
    }
}
