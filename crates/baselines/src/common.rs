//! Shared scaffolding for baseline algorithms: a fleet of workers with
//! identical initial replicas and a first-class membership (active) mask,
//! so worker churn is driven uniformly through the [`saps_core::Trainer`]
//! interface instead of per-algorithm side doors.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_core::{ConfigError, Executor, Worker};
use saps_data::{partition, Dataset};
use saps_nn::Model;
use saps_tensor::rng::{derive_seed, streams};

/// `(index, item)` pairs for the items at `ranks`, in ascending index
/// order regardless of the order of `ranks` — the shared selector
/// behind every per-rank fan-out (workers, broadcast replicas,
/// compressors). Centralized so the determinism contract (stable
/// ascending order) cannot drift per call site.
pub fn select_ranked_mut<'a, T>(items: &'a mut [T], ranks: &[usize]) -> Vec<(usize, &'a mut T)> {
    let mut selected = vec![false; items.len()];
    for &r in ranks {
        selected[r] = true;
    }
    items
        .iter_mut()
        .enumerate()
        .filter(|(i, _)| selected[*i])
        .collect()
}

/// A fleet of `n` workers with identically initialized model replicas,
/// an IID (or caller-supplied) data partition, a scratch model for
/// consensus evaluation, and an active mask for churn.
pub struct Fleet {
    workers: Vec<Worker>,
    active: Vec<bool>,
    eval_model: Model,
    n_params: usize,
    /// Mini-batch size per worker per round.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("workers", &self.workers.len())
            .field("active", &self.active_count())
            .field("n_params", &self.n_params)
            .finish()
    }
}

impl Fleet {
    /// Builds a fleet over an IID partition of `train`.
    pub fn new(
        n: usize,
        train: &Dataset,
        factory: impl Fn(&mut StdRng) -> Model,
        seed: u64,
        batch_size: usize,
        lr: f32,
    ) -> Result<Self, ConfigError> {
        let parts = partition::iid(train, n, derive_seed(seed, 0, streams::DATA));
        Self::with_partitions(parts, factory, seed, batch_size, lr)
    }

    /// Builds a fleet over explicit partitions.
    pub fn with_partitions(
        parts: Vec<Dataset>,
        factory: impl Fn(&mut StdRng) -> Model,
        seed: u64,
        batch_size: usize,
        lr: f32,
    ) -> Result<Self, ConfigError> {
        if parts.len() < 2 {
            return Err(ConfigError::invalid("Fleet", "need at least two workers"));
        }
        if batch_size == 0 {
            return Err(ConfigError::invalid("Fleet", "batch_size must be >= 1"));
        }
        let make = || {
            let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0, streams::INIT));
            factory(&mut rng)
        };
        let workers: Vec<Worker> = parts
            .into_iter()
            .enumerate()
            .map(|(rank, data)| Worker::new(rank, make(), data, seed))
            .collect();
        let eval_model = make();
        let n_params = eval_model.num_params();
        Ok(Fleet {
            active: vec![true; workers.len()],
            workers,
            eval_model,
            n_params,
            batch_size,
            lr,
        })
    }

    /// Number of workers (active and inactive).
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the fleet is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Model size `N`.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Worker access.
    pub fn worker(&self, rank: usize) -> &Worker {
        &self.workers[rank]
    }

    /// Mutable worker access.
    pub fn worker_mut(&mut self, rank: usize) -> &mut Worker {
        &mut self.workers[rank]
    }

    /// Whether `rank` is currently active.
    pub fn is_active(&self, rank: usize) -> bool {
        self.active[rank]
    }

    /// Number of active workers.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Ranks of currently active workers, ascending.
    pub fn active_ranks(&self) -> Vec<usize> {
        (0..self.workers.len())
            .filter(|&r| self.active[r])
            .collect()
    }

    /// Marks a worker active/inactive. Inactive workers keep their model
    /// (they re-join where they left off unless the algorithm resyncs
    /// them). Fails if `rank` is out of range or if `min_active` workers
    /// would not remain.
    pub fn set_active(
        &mut self,
        rank: usize,
        active: bool,
        min_active: usize,
    ) -> Result<(), ConfigError> {
        if rank >= self.workers.len() {
            return Err(ConfigError::invalid(
                "Fleet",
                format!("worker rank {rank} out of range ({})", self.workers.len()),
            ));
        }
        if self.active[rank] == active {
            return Ok(());
        }
        if !active && self.active_count() <= min_active {
            return Err(ConfigError::invalid(
                "Fleet",
                format!("cannot deactivate: at least {min_active} workers must stay active"),
            ));
        }
        self.active[rank] = active;
        Ok(())
    }

    /// `(global rank, worker)` pairs for the active workers, in
    /// ascending rank order — the unit of work the round engine fans
    /// out.
    pub fn active_workers_mut(&mut self) -> Vec<(usize, &mut Worker)> {
        let active = &self.active;
        self.workers
            .iter_mut()
            .enumerate()
            .filter(|(r, _)| active[*r])
            .collect()
    }

    /// `(global rank, worker)` pairs for the given rank subset, in
    /// ascending rank order regardless of the order of `ranks` (so the
    /// fan-out and its reduction are deterministic for any caller).
    pub fn workers_mut_at(&mut self, ranks: &[usize]) -> Vec<(usize, &mut Worker)> {
        select_ranked_mut(&mut self.workers, ranks)
    }

    /// FedAvg-style client phase: every worker in `ranks` downloads
    /// `global` and runs `steps` local SGD steps, fanned out across
    /// `exec`; returns the `(Σ loss, Σ accuracy)` over all steps,
    /// reduced in ascending-rank order (bit-identical at any thread
    /// count). Shared by [`crate::FedAvg`] and [`crate::SFedAvg`].
    pub fn local_steps_on(
        &mut self,
        exec: &Executor,
        ranks: &[usize],
        global: &[f32],
        steps: usize,
    ) -> (f64, f64) {
        let (bs, lr) = (self.batch_size, self.lr);
        let items = self.workers_mut_at(ranks);
        let results = exec.par_map(items, |_, (_, w)| {
            w.set_flat(global);
            let mut l = 0.0f64;
            let mut a = 0.0f64;
            for _ in 0..steps {
                let (li, ai) = w.sgd_step(bs, lr);
                l += li as f64;
                a += ai as f64;
            }
            (l, a)
        });
        results
            .into_iter()
            .fold((0.0, 0.0), |(l, a), (li, ai)| (l + li, a + ai))
    }

    /// Runs one local SGD step on every *active* worker, fanning out
    /// across `exec`'s threads; returns the mean `(loss, accuracy)`.
    /// The reduction runs in rank order, so the result is bit-identical
    /// at any thread count.
    pub fn sgd_step_all_on(&mut self, exec: &Executor) -> (f32, f32) {
        let (bs, lr) = (self.batch_size, self.lr);
        let items = self.active_workers_mut();
        let m = items.len();
        let results = exec.par_map(items, |_, (_, w)| w.sgd_step(bs, lr));
        Self::mean_loss_acc(&results, m)
    }

    /// [`Fleet::sgd_step_all_on`] on the calling thread only.
    pub fn sgd_step_all(&mut self) -> (f32, f32) {
        self.sgd_step_all_on(&Executor::sequential())
    }

    /// Accumulates gradients on every *active* worker without stepping,
    /// fanning out across `exec`'s threads; returns the mean
    /// `(loss, accuracy)`.
    pub fn accumulate_grads_all_on(&mut self, exec: &Executor) -> (f32, f32) {
        let bs = self.batch_size;
        let items = self.active_workers_mut();
        let m = items.len();
        let results = exec.par_map(items, |_, (_, w)| w.accumulate_grads(bs));
        Self::mean_loss_acc(&results, m)
    }

    /// [`Fleet::accumulate_grads_all_on`] on the calling thread only.
    pub fn accumulate_grads_all(&mut self) -> (f32, f32) {
        self.accumulate_grads_all_on(&Executor::sequential())
    }

    fn mean_loss_acc(results: &[(f32, f32)], m: usize) -> (f32, f32) {
        let mut loss = 0.0f64;
        let mut acc = 0.0f64;
        for &(l, a) in results {
            loss += l as f64;
            acc += a as f64;
        }
        let n = m.max(1) as f64;
        ((loss / n) as f32, (acc / n) as f32)
    }

    /// The mean of all *active* workers' flat models.
    pub fn average_model(&self) -> Vec<f32> {
        let ranks = self.active_ranks();
        let mut acc = vec![0.0f32; self.n_params];
        for &r in &ranks {
            for (a, v) in acc.iter_mut().zip(self.workers[r].flat()) {
                *a += v;
            }
        }
        let inv = 1.0 / ranks.len().max(1) as f32;
        for a in &mut acc {
            *a *= inv;
        }
        acc
    }

    /// Validation accuracy of a given flat model.
    pub fn evaluate_flat(&mut self, flat: &[f32], val: &Dataset, max_samples: usize) -> f32 {
        self.eval_model.set_flat_params(flat);
        self.eval_model.evaluate(val, max_samples)
    }

    /// Validation accuracy of the active-fleet-average model.
    pub fn evaluate_average(&mut self, val: &Dataset, max_samples: usize) -> f32 {
        let avg = self.average_model();
        self.evaluate_flat(&avg, val, max_samples)
    }

    /// Mean *active* local-dataset size (for epoch accounting).
    pub fn mean_partition_len(&self) -> f64 {
        let ranks = self.active_ranks();
        ranks
            .iter()
            .map(|&r| self.workers[r].data_len())
            .sum::<usize>() as f64
            / ranks.len().max(1) as f64
    }

    /// Fraction of an epoch advanced by one batch per active worker.
    pub fn epochs_per_round(&self) -> f64 {
        self.batch_size as f64 / self.mean_partition_len().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::SyntheticSpec;
    use saps_nn::zoo;

    fn fleet(n: usize) -> Fleet {
        let ds = SyntheticSpec::tiny().samples(400).generate(1);
        Fleet::new(n, &ds, |rng| zoo::mlp(&[16, 12, 4], rng), 7, 16, 0.1).unwrap()
    }

    #[test]
    fn replicas_start_identical() {
        let f = fleet(4);
        let base = f.worker(0).flat();
        for r in 1..4 {
            assert_eq!(base, f.worker(r).flat());
        }
    }

    #[test]
    fn sgd_step_all_diverges_replicas() {
        let mut f = fleet(3);
        let (loss, acc) = f.sgd_step_all();
        assert!(loss.is_finite() && (0.0..=1.0).contains(&acc));
        assert_ne!(f.worker(0).flat(), f.worker(1).flat());
    }

    #[test]
    fn average_model_is_midpoint_for_two_workers() {
        let mut f = fleet(2);
        f.sgd_step_all();
        let avg = f.average_model();
        let a = f.worker(0).flat();
        let b = f.worker(1).flat();
        for i in 0..avg.len() {
            assert!((avg[i] - 0.5 * (a[i] + b[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn epochs_per_round() {
        let f = fleet(4);
        // 400 samples / 4 workers = 100 per worker; batch 16 -> 0.16.
        assert!((f.epochs_per_round() - 0.16).abs() < 1e-9);
    }

    #[test]
    fn tiny_fleets_are_rejected() {
        let ds = SyntheticSpec::tiny().samples(100).generate(1);
        assert!(Fleet::new(1, &ds, |rng| zoo::mlp(&[16, 12, 4], rng), 7, 16, 0.1).is_err());
        assert!(Fleet::new(4, &ds, |rng| zoo::mlp(&[16, 12, 4], rng), 7, 0, 0.1).is_err());
    }

    #[test]
    fn inactive_workers_freeze_and_drop_out_of_averages() {
        let mut f = fleet(4);
        f.sgd_step_all();
        f.set_active(3, false, 2).unwrap();
        let frozen = f.worker(3).flat();
        f.sgd_step_all();
        assert_eq!(f.worker(3).flat(), frozen, "inactive worker trained");
        assert_eq!(f.active_ranks(), vec![0, 1, 2]);
        // Average over the 3 active workers only.
        let avg = f.average_model();
        let mut manual = vec![0.0f32; f.n_params()];
        for r in 0..3 {
            for (m, v) in manual.iter_mut().zip(f.worker(r).flat()) {
                *m += v / 3.0;
            }
        }
        for (a, b) in avg.iter().zip(&manual) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn parallel_sgd_step_matches_sequential_bitwise() {
        let mut seq = fleet(5);
        let mut par = fleet(5);
        let exec = Executor::new(saps_core::ParallelismPolicy::Threads(3));
        for _ in 0..3 {
            let a = seq.sgd_step_all();
            let b = par.sgd_step_all_on(&exec);
            assert_eq!(a, b);
        }
        for r in 0..5 {
            assert_eq!(seq.worker(r).flat(), par.worker(r).flat(), "worker {r}");
        }
    }

    #[test]
    fn worker_subset_helpers_return_ascending_ranks() {
        let mut f = fleet(5);
        f.set_active(2, false, 2).unwrap();
        let active: Vec<usize> = f.active_workers_mut().iter().map(|(r, _)| *r).collect();
        assert_eq!(active, vec![0, 1, 3, 4]);
        // Ascending regardless of the requested order.
        let picked: Vec<usize> = f
            .workers_mut_at(&[4, 0, 3])
            .iter()
            .map(|(r, _)| *r)
            .collect();
        assert_eq!(picked, vec![0, 3, 4]);
    }

    #[test]
    fn min_active_guard_holds() {
        let mut f = fleet(3);
        f.set_active(0, false, 2).unwrap();
        assert!(f.set_active(1, false, 2).is_err());
        assert!(f.set_active(7, false, 2).is_err());
        f.set_active(0, true, 2).unwrap();
        assert_eq!(f.active_count(), 3);
    }
}
