//! Ring all-reduce schedule shared by the in-memory PSGD baseline and
//! the cluster wire driver.
//!
//! The classical bandwidth-optimal ring all-reduce over `m` positions
//! splits the `n`-element vector into `m` contiguous chunks and runs two
//! phases of `m − 1` steps each:
//!
//! * **reduce-scatter** — at step `s`, position `i` sends chunk
//!   `(i − s) mod m` to its successor `(i + 1) mod m`, which adds its own
//!   gradient for that chunk to the received partial. Chunk `c` therefore
//!   travels positions `c, c+1, …` accumulating the *left fold*
//!   `g[c] + g[c+1] + … + g[c+m−1]` (indices mod `m`) and completes at
//!   position `(c + m − 1) mod m`, where it is scaled by `1/m`;
//! * **all-gather** — at step `s`, position `i` forwards chunk
//!   `(i + 1 − s) mod m` to its successor, so every position ends the
//!   round holding the full mean vector.
//!
//! Everything here is deterministic and position-ordered, so a wire
//! driver that frames each hop as a real message and applies the decoded
//! values in schedule order reproduces [`ring_reduce_mean`] bit-for-bit
//! — that equivalence is what `tests/cluster_conformance.rs` pins.

use std::ops::Range;

/// The contiguous index range of chunk `c` when an `n`-element vector is
/// split across `m` ring positions. The ranges `0..m` tile `[0, n)`
/// exactly; when `m ∤ n` the chunk lengths differ by at most one.
pub fn chunk_range(n: usize, m: usize, c: usize) -> Range<usize> {
    debug_assert!(c < m);
    (c * n / m)..((c + 1) * n / m)
}

/// Chunk sent by position `i` at reduce-scatter step `s ∈ 0..m−1`.
pub fn reduce_scatter_chunk(m: usize, i: usize, s: usize) -> usize {
    debug_assert!(s < m);
    (i + m - s) % m
}

/// Chunk sent by position `i` at all-gather step `s ∈ 0..m−1`.
pub fn allgather_chunk(m: usize, i: usize, s: usize) -> usize {
    debug_assert!(s < m);
    (i + 1 + m - s) % m
}

/// Bytes position `i` puts on its successor link over a full all-reduce:
/// it forwards every chunk except `(i+1) mod m` during reduce-scatter and
/// every chunk except `(i+2) mod m` during all-gather, 4 bytes per f32.
/// Degenerates to the textbook `2·(m−1)·4n/m` when `m | n`.
pub fn ring_send_bytes(n: usize, m: usize, i: usize) -> u64 {
    let skip_rs = chunk_range(n, m, (i + 1) % m).len() as u64;
    let skip_ag = chunk_range(n, m, (i + 2) % m).len() as u64;
    4 * (2 * n as u64 - skip_rs - skip_ag)
}

/// Mean of `grads` (one vector per ring position, all length `n`) into
/// `out`, folded exactly as the ring schedule folds it: chunk `c` is
/// accumulated `g[c] + g[c+1] + … + g[c+m−1]` then scaled by `1/m`.
///
/// This is *not* the same f32 bit pattern as a position-0-first fold for
/// every chunk — it is the bit pattern the wire exchange produces.
pub fn ring_reduce_mean(grads: &[Vec<f32>], out: &mut [f32]) {
    let m = grads.len();
    assert!(m >= 1, "ring all-reduce needs at least one position");
    let n = out.len();
    let inv = 1.0 / m as f32;
    for c in 0..m {
        let range = chunk_range(n, m, c);
        out[range.clone()].copy_from_slice(&grads[c][range.clone()]);
        for k in 1..m {
            let g = &grads[(c + k) % m];
            for j in range.clone() {
                out[j] += g[j];
            }
        }
        for j in range {
            out[j] *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_tile_the_vector() {
        for &(n, m) in &[(508usize, 4usize), (509, 4), (7, 3), (5, 5), (3, 2), (0, 2)] {
            let mut next = 0;
            for c in 0..m {
                let r = chunk_range(n, m, c);
                assert_eq!(r.start, next, "gap before chunk {c} at n={n} m={m}");
                next = r.end;
            }
            assert_eq!(next, n);
        }
    }

    #[test]
    fn send_bytes_degenerate_to_textbook_when_divisible() {
        let (n, m) = (508usize, 4usize);
        for i in 0..m {
            assert_eq!(
                ring_send_bytes(n, m, i),
                2 * (m as u64 - 1) * (4 * n as u64 / m as u64)
            );
        }
    }

    #[test]
    fn send_bytes_conserve_total() {
        for &(n, m) in &[(509usize, 4usize), (1_000, 7), (16, 2)] {
            let total: u64 = (0..m).map(|i| ring_send_bytes(n, m, i)).sum();
            assert_eq!(total, 8 * n as u64 * (m as u64 - 1));
        }
    }

    #[test]
    fn schedule_covers_every_chunk_once() {
        let m = 5;
        for i in 0..m {
            let mut sent: Vec<usize> = (0..m - 1).map(|s| reduce_scatter_chunk(m, i, s)).collect();
            sent.sort_unstable();
            sent.dedup();
            assert_eq!(sent.len(), m - 1);
            assert!(
                !sent.contains(&((i + 1) % m)),
                "never sends its terminal chunk"
            );
            let mut fwd: Vec<usize> = (0..m - 1).map(|s| allgather_chunk(m, i, s)).collect();
            fwd.sort_unstable();
            fwd.dedup();
            assert_eq!(fwd.len(), m - 1);
            assert!(!fwd.contains(&((i + 2) % m)));
        }
    }

    /// Simulate the hop-by-hop wire exchange and check the mean helper
    /// reproduces it bit-for-bit — the invariant the cluster driver
    /// depends on.
    #[test]
    fn mean_matches_simulated_wire_exchange() {
        let (n, m) = (23usize, 4usize);
        let grads: Vec<Vec<f32>> = (0..m)
            .map(|i| (0..n).map(|j| ((i * 31 + j) as f32).sin()).collect())
            .collect();
        // Reduce-scatter: partial[c] is the traveling accumulator.
        let mut partial = grads.clone();
        for s in 0..m - 1 {
            for i in 0..m {
                let c = reduce_scatter_chunk(m, i, s);
                let dst = (i + 1) % m;
                let range = chunk_range(n, m, c);
                let hop: Vec<f32> = partial[i][range.clone()].to_vec();
                for (j, v) in range.clone().zip(hop) {
                    partial[dst][j] = v + grads[dst][j];
                }
            }
        }
        // Scale at each chunk's final owner, then gather.
        let inv = 1.0 / m as f32;
        let mut mean = vec![0.0f32; n];
        for c in 0..m {
            let owner = (c + m - 1) % m;
            for j in chunk_range(n, m, c) {
                mean[j] = partial[owner][j] * inv;
            }
        }
        let mut out = vec![0.0f32; n];
        ring_reduce_mean(&grads, &mut out);
        assert_eq!(
            mean.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_position_is_identity() {
        let g = vec![vec![1.5f32, -2.25, f32::MIN_POSITIVE]];
        let mut out = vec![0.0; 3];
        ring_reduce_mean(&g, &mut out);
        assert_eq!(out, g[0]);
    }
}
