//! The pluggable transport layer and its wire-statistics tap.

use crate::ClusterError;
use bytes::Bytes;
use saps_proto::{frame, Message, TrafficClass};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

/// A node address: a training-plane node (coordinator or worker) or a
/// serving-plane node (`saps-serve` replica or client).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Addr {
    /// The (single) coordinator.
    Coordinator,
    /// Worker `rank`.
    Worker(u32),
    /// Serving replica `id` (the `saps-serve` inference plane).
    Replica(u32),
    /// Serving client `id` — a request source, never a frame target of
    /// the training plane.
    Client(u32),
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Coordinator => write!(f, "coordinator"),
            Addr::Worker(r) => write!(f, "worker {r}"),
            Addr::Replica(r) => write!(f, "replica {r}"),
            Addr::Client(c) => write!(f, "client {c}"),
        }
    }
}

/// Moves encoded frames between nodes.
///
/// The contract is datagram-like: one [`Transport::send`] delivers one
/// complete frame to `to`'s inbox, and [`Transport::recv`] pops frames
/// in an order that is FIFO *per sender* (stream transports may
/// interleave senders arbitrarily; the node state machines tolerate
/// that). Transports are lossless and unordered-across-senders — see
/// `docs/PROTOCOL.md` for the full contract.
pub trait Transport {
    /// Queues `frame` from `from` to `to`.
    fn send(&mut self, from: Addr, to: Addr, frame: Bytes) -> Result<(), ClusterError>;

    /// Pops the next frame addressed to `at`, with its sender. `None`
    /// means nothing is available *right now* (a stream transport may
    /// still have bytes in flight).
    fn recv(&mut self, at: Addr) -> Result<Option<(Addr, Bytes)>, ClusterError>;
}

/// Cumulative on-wire byte counters, split by [`TrafficClass`].
///
/// `data_bytes` counts only the values sections of
/// [`Message::MaskedPayload`] frames — the `4·nnz` Table I worker-row
/// cost; the payload frames' envelopes (header, round field, value
/// count, checksum) are counted in `control_bytes` together with whole
/// control frames. `model_bytes` counts the model-distribution plane —
/// `FetchModel`/`FinalModel`/`ModelAnnounce` plus the chunked catch-up
/// frames (`ChunkRequest`/`ChunkData`/`ManifestAnnounce`) — and
/// `serve_bytes` the `InferRequest`/`InferResponse` inference traffic —
/// kept out of `control_bytes` so the trainer's per-round control
/// billing is unchanged by co-located serving load. Invariant:
/// `total_bytes = data_bytes + control_bytes + model_bytes + serve_bytes`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Frames sent.
    pub frames: u64,
    /// All bytes framed on the wire.
    pub total_bytes: u64,
    /// Masked-value payload bytes (worker rows, `4·nnz` per payload).
    pub data_bytes: u64,
    /// Control frames plus all framing overhead (server row).
    pub control_bytes: u64,
    /// Model-distribution frames: `FetchModel`/`FinalModel`/
    /// `ModelAnnounce` and the chunked catch-up plane
    /// (`ChunkRequest`/`ChunkData`/`ManifestAnnounce`).
    pub model_bytes: u64,
    /// Inference frames (`InferRequest`/`InferResponse`).
    pub serve_bytes: u64,
}

/// One observed data-plane transfer: `(src, dst, frame_bytes,
/// value_bytes)` of a worker-to-worker [`Message::MaskedPayload`].
pub type WireTransfer = (u32, u32, u64, u64);

#[derive(Debug, Default)]
struct TapInner {
    stats: WireStats,
    transfers: Vec<WireTransfer>,
}

/// A shared tap every transport reports sent frames to: cumulative
/// [`WireStats`] plus the per-transfer data-plane log the cluster driver
/// prices rounds from.
///
/// Cloning shares the underlying counters (it's an `Arc`), so a caller
/// can keep one handle while the transport inside a running experiment
/// holds another.
#[derive(Debug, Clone, Default)]
pub struct WireTap(Arc<Mutex<TapInner>>);

impl WireTap {
    /// A fresh tap with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the cumulative counters.
    pub fn snapshot(&self) -> WireStats {
        self.0.lock().expect("wire tap lock").stats
    }

    /// Drains the data-plane transfer log accumulated since the last
    /// call (the driver calls this once per round).
    pub fn take_transfers(&self) -> Vec<WireTransfer> {
        std::mem::take(&mut self.0.lock().expect("wire tap lock").transfers)
    }

    /// Meters one sent frame. Transports call this from
    /// [`Transport::send`]; the tag is peeked from the header, the body
    /// is never decoded.
    pub fn record(&self, from: Addr, to: Addr, frame_bytes: &[u8]) {
        let mut inner = self.0.lock().expect("wire tap lock");
        inner.stats.frames += 1;
        inner.stats.total_bytes += frame_bytes.len() as u64;
        let Ok(Some(info)) = frame::peek(frame_bytes) else {
            // A frame we cannot classify still counts as control chatter.
            inner.stats.control_bytes += frame_bytes.len() as u64;
            return;
        };
        match Message::traffic_class_of(info.tag) {
            Some(TrafficClass::DataPlane) => {
                // Every data-plane body = round (8) + count (4) + data
                // section; `data_section_of` strips the shared header so
                // Masked/Dense/Sparse payloads all meter their values.
                let values = Message::data_section_of(info.tag, info.body_len);
                let envelope = frame_bytes.len() as u64 - values;
                inner.stats.data_bytes += values;
                inner.stats.control_bytes += envelope;
                if let (Addr::Worker(src), Addr::Worker(dst)) = (from, to) {
                    inner
                        .transfers
                        .push((src, dst, frame_bytes.len() as u64, values));
                }
            }
            Some(TrafficClass::ModelPlane) => inner.stats.model_bytes += frame_bytes.len() as u64,
            Some(TrafficClass::ServePlane) => inner.stats.serve_bytes += frame_bytes.len() as u64,
            Some(TrafficClass::ControlPlane) | None => {
                inner.stats.control_bytes += frame_bytes.len() as u64
            }
        }
    }
}

/// The default in-process transport: per-destination FIFO queues,
/// deterministic, no sockets. Frames are still fully encoded and decoded
/// — loopback exercises the real wire format, it only skips the kernel.
#[derive(Debug, Default)]
pub struct LoopbackTransport {
    queues: BTreeMap<Addr, VecDeque<(Addr, Bytes)>>,
    tap: WireTap,
}

impl LoopbackTransport {
    /// A loopback transport reporting to `tap`.
    pub fn new(tap: WireTap) -> Self {
        LoopbackTransport {
            queues: BTreeMap::new(),
            tap,
        }
    }

    /// Total frames currently queued, over all destinations.
    pub fn queued(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }
}

impl Transport for LoopbackTransport {
    fn send(&mut self, from: Addr, to: Addr, frame: Bytes) -> Result<(), ClusterError> {
        self.tap.record(from, to, &frame);
        self.queues.entry(to).or_default().push_back((from, frame));
        Ok(())
    }

    fn recv(&mut self, at: Addr) -> Result<Option<(Addr, Bytes)>, ClusterError> {
        Ok(self.queues.get_mut(&at).and_then(VecDeque::pop_front))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_is_fifo_per_destination() {
        let mut t = LoopbackTransport::new(WireTap::new());
        let f1 = frame::encode(&Message::Join { rank: 1 });
        let f2 = frame::encode(&Message::Leave { rank: 1 });
        t.send(Addr::Worker(1), Addr::Coordinator, f1.clone())
            .unwrap();
        t.send(Addr::Worker(2), Addr::Coordinator, f2.clone())
            .unwrap();
        assert_eq!(t.queued(), 2);
        let (from, got) = t.recv(Addr::Coordinator).unwrap().unwrap();
        assert_eq!((from, got), (Addr::Worker(1), f1));
        let (from, got) = t.recv(Addr::Coordinator).unwrap().unwrap();
        assert_eq!((from, got), (Addr::Worker(2), f2));
        assert!(t.recv(Addr::Coordinator).unwrap().is_none());
        assert!(t.recv(Addr::Worker(5)).unwrap().is_none());
    }

    #[test]
    fn tap_splits_classes_and_balances_totals() {
        let tap = WireTap::new();
        let mut t = LoopbackTransport::new(tap.clone());
        let payload = Message::MaskedPayload {
            round: 0,
            values: vec![1.0; 5],
        };
        let control = Message::RoundEnd {
            round: 0,
            rank: 0,
            loss: 0.0,
            acc: 0.0,
        };
        let model = Message::FetchModel { rank: 0 };
        let infer = Message::InferRequest {
            id: 1,
            features: vec![0.5; 3],
        };
        for (to, msg) in [
            (Addr::Worker(1), &payload),
            (Addr::Coordinator, &control),
            (Addr::Worker(0), &model),
        ] {
            t.send(Addr::Worker(0), to, frame::encode(msg)).unwrap();
        }
        t.send(Addr::Client(0), Addr::Replica(1), frame::encode(&infer))
            .unwrap();
        let s = tap.snapshot();
        assert_eq!(s.frames, 4);
        assert_eq!(s.data_bytes, 20, "values-only section is 4·nnz");
        assert_eq!(s.model_bytes, frame::encoded_len(&model) as u64);
        assert_eq!(s.serve_bytes, frame::encoded_len(&infer) as u64);
        assert_eq!(
            s.total_bytes,
            s.data_bytes + s.control_bytes + s.model_bytes + s.serve_bytes
        );
        let transfers = tap.take_transfers();
        assert_eq!(
            transfers,
            vec![(0, 1, frame::encoded_len(&payload) as u64, 20)]
        );
        assert!(tap.take_transfers().is_empty(), "log drains");
    }
}
