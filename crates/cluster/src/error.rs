//! Cluster runtime errors.

use saps_core::ConfigError;
use saps_proto::ProtoError;

/// Everything that can go wrong driving a cluster run.
#[derive(Debug)]
pub enum ClusterError {
    /// A frame failed to decode (corruption on the wire).
    Proto(ProtoError),
    /// A control request was rejected (e.g. churn below the minimum
    /// fleet) — carries the same [`ConfigError`] the in-memory trainer
    /// would have returned.
    Config(ConfigError),
    /// The transport failed to move bytes (socket errors, unknown
    /// destination).
    Transport(String),
    /// A node received a message the protocol does not allow in its
    /// current state, or a round stalled with messages outstanding.
    Protocol(String),
    /// A worker sent provably invalid traffic — a frame that fails to
    /// decode, or a payload violating the round's mask contract. The
    /// trainer quarantines the rank and replays the round without it;
    /// this variant surfaces when that recovery itself is impossible
    /// (e.g. the fleet would drop below the minimum).
    Byzantine {
        /// The offending worker's rank.
        rank: u32,
        /// What the worker sent.
        detail: String,
    },
    /// A joiner's model catch-up could not complete: every serving peer
    /// was tried (the preferred donor first, then each fallback in the
    /// bandwidth ranking) and the download still died — sources
    /// disconnected, served only corrupt chunks, or exhausted the
    /// chunk retry budget.
    ResyncFailed {
        /// The donor originally selected for the joiner.
        donor: u32,
        /// The joiner that failed to catch up.
        rank: u32,
        /// Why the final attempt died.
        detail: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Proto(e) => write!(f, "wire decode error: {e}"),
            ClusterError::Config(e) => write!(f, "control request rejected: {e}"),
            ClusterError::Transport(e) => write!(f, "transport error: {e}"),
            ClusterError::Protocol(e) => write!(f, "protocol violation: {e}"),
            ClusterError::Byzantine { rank, detail } => {
                write!(f, "byzantine worker {rank}: {detail}")
            }
            ClusterError::ResyncFailed {
                donor,
                rank,
                detail,
            } => {
                write!(
                    f,
                    "resync of joiner {rank} failed (donor {donor}): {detail}"
                )
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ProtoError> for ClusterError {
    fn from(e: ProtoError) -> Self {
        ClusterError::Proto(e)
    }
}

impl From<ConfigError> for ClusterError {
    fn from(e: ConfigError) -> Self {
        ClusterError::Config(e)
    }
}
