//! The chunked model-distribution plane: epoch manifests and the
//! peer-fanning download scheduler.
//!
//! Every churn path used to ship the entire model as one monolithic
//! [`Message::FinalModel`] frame — the exact bottleneck the
//! millions-of-intermittently-connected-users regime cannot afford
//! (multi-MB frames park in a stream transport's write backlog, and a
//! single donor serializes every joiner behind one link). This module
//! replaces that with a BitTorrent-style fetch:
//!
//! * a publisher (the coordinator, or the baseline driver) splits the
//!   checkpoint blob into fixed-size chunks and broadcasts a
//!   [`ChunkManifest`] — epoch stamp, total length, chunk size, one
//!   FNV-1a checksum per chunk ([`Message::ManifestAnnounce`]);
//! * any peer whose own encoded state matches the manifest serves
//!   verified slices of it on [`Message::ChunkRequest`];
//! * a joiner's [`DownloadScheduler`] fans the chunk requests across
//!   multiple peers at once (ranked fastest-first from the bandwidth
//!   snapshot), verifies every [`Message::ChunkData`] against the
//!   manifest, re-sources failed or corrupt chunks from the next peer,
//!   and resumes cleanly after a peer disconnect.
//!
//! The manifest's checksums are the publisher's ground truth: a peer can
//! only ever contribute bytes that hash to what the publisher announced,
//! so the assembled blob is bit-identical to the monolithic path no
//! matter which mix of peers served it (pinned by
//! `tests/chunk_catchup.rs`).

use saps_proto::{frame, Message};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::ops::Range;

/// Default chunk size for model distribution (64 KiB — small enough that
/// hundreds of chunks exist for any real model, so requests actually fan
/// out; large enough that the 19-byte frame envelope is noise).
pub const DEFAULT_CHUNK_BYTES: u32 = 64 * 1024;

/// The chunk table of one published checkpoint epoch: what
/// [`Message::ManifestAnnounce`] carries on the wire.
///
/// Chunk `i` covers blob bytes `[i·chunk_size, min((i+1)·chunk_size,
/// total_len))`; every chunk is exactly `chunk_size` bytes except the
/// last, which carries the remainder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkManifest {
    /// Monotone checkpoint epoch (bumped once per published manifest).
    pub epoch: u64,
    /// Training round the checkpoint captures.
    pub round: u64,
    /// Total checkpoint blob length in bytes.
    pub total_len: u64,
    /// Fixed chunk size in bytes.
    pub chunk_size: u32,
    /// Per-chunk FNV-1a 64 checksums, in index order.
    pub checksums: Vec<u64>,
}

impl ChunkManifest {
    /// Builds the manifest of `blob` with `chunk_size`-byte chunks.
    ///
    /// # Panics
    ///
    /// If `chunk_size == 0`.
    pub fn build(epoch: u64, round: u64, blob: &[u8], chunk_size: u32) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        let checksums = blob
            .chunks(chunk_size as usize)
            .map(frame::checksum)
            .collect();
        ChunkManifest {
            epoch,
            round,
            total_len: blob.len() as u64,
            chunk_size,
            checksums,
        }
    }

    /// Number of chunks in the table.
    pub fn chunk_count(&self) -> u32 {
        self.checksums.len() as u32
    }

    /// The blob byte range chunk `index` covers, `None` out of range.
    pub fn chunk_range(&self, index: u32) -> Option<Range<usize>> {
        if index >= self.chunk_count() {
            return None;
        }
        let start = index as usize * self.chunk_size as usize;
        let end = (start + self.chunk_size as usize).min(self.total_len as usize);
        Some(start..end)
    }

    /// Whether `data` is bit-exactly chunk `index`: right length for the
    /// chunk's range *and* hashing to the announced checksum.
    pub fn verify(&self, index: u32, data: &[u8]) -> bool {
        match self.chunk_range(index) {
            Some(r) => {
                data.len() == r.len() && frame::checksum(data) == self.checksums[index as usize]
            }
            None => false,
        }
    }

    /// Whether `blob` is bit-exactly the published blob — the test a
    /// peer runs on its *own* encoded state to decide if it can serve
    /// this epoch.
    pub fn matches(&self, blob: &[u8]) -> bool {
        blob.len() as u64 == self.total_len
            && blob
                .chunks(self.chunk_size as usize)
                .map(frame::checksum)
                .eq(self.checksums.iter().copied())
    }

    /// Chunk `index` of `blob`, `None` out of range.
    pub fn slice<'a>(&self, blob: &'a [u8], index: u32) -> Option<&'a [u8]> {
        blob.get(self.chunk_range(index)?)
    }

    /// The [`Message::ChunkData`] reply serving chunk `index` of `blob`
    /// (checksum stamped from the actual bytes), `None` out of range.
    pub fn chunk_reply(&self, blob: &[u8], index: u32) -> Option<Message> {
        let data = self.slice(blob, index)?;
        Some(Message::ChunkData {
            epoch: self.epoch,
            index,
            checksum: frame::checksum(data),
            data: data.to_vec(),
        })
    }

    /// The wire announcement of this manifest.
    pub fn announce(&self) -> Message {
        Message::ManifestAnnounce {
            epoch: self.epoch,
            round: self.round,
            total_len: self.total_len,
            chunk_size: self.chunk_size,
            checksums: self.checksums.clone(),
        }
    }

    /// Rebuilds a manifest from a received [`Message::ManifestAnnounce`],
    /// `None` when the message is another variant or internally
    /// inconsistent (zero chunk size with a non-empty blob, or a
    /// checksum count that disagrees with `total_len / chunk_size`).
    pub fn from_announce(msg: &Message) -> Option<Self> {
        let Message::ManifestAnnounce {
            epoch,
            round,
            total_len,
            chunk_size,
            checksums,
        } = msg
        else {
            return None;
        };
        let expect = if *total_len == 0 {
            0
        } else {
            let cs = *chunk_size as u64;
            if cs == 0 {
                return None;
            }
            total_len.div_ceil(cs)
        };
        if checksums.len() as u64 != expect {
            return None;
        }
        Some(ChunkManifest {
            epoch: *epoch,
            round: *round,
            total_len: *total_len,
            chunk_size: (*chunk_size).max(1),
            checksums: checksums.clone(),
        })
    }
}

/// What [`DownloadScheduler::on_chunk`] decided about one received
/// [`Message::ChunkData`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkOutcome {
    /// Verified against the manifest and stored.
    Accepted,
    /// Already held (a retried request's late first answer); dropped.
    Duplicate,
    /// Wrong epoch, out-of-range index, a NACK, or corrupt bytes — the
    /// chunk was requeued for a different peer.
    Rejected,
}

/// Fans one manifest's chunk requests across multiple peers, verifies
/// every reply, re-sources failures, and survives peer loss.
///
/// Deterministic by construction: chunk `i`'s first request goes to
/// ranked peer `i mod n` (so a multi-chunk download always spreads over
/// every available peer), and each retry moves one peer down the ring —
/// no clocks, no randomness, so a seeded fault schedule replays
/// bit-identically.
///
/// The scheduler is transport-agnostic: callers pump
/// [`DownloadScheduler::next_request`] until `None` (all in flight),
/// deliver replies to [`DownloadScheduler::on_chunk`], and call
/// [`DownloadScheduler::requeue_outstanding`] when the wire goes idle
/// with requests unanswered (lost frames) or
/// [`DownloadScheduler::on_peer_lost`] when a source disconnects.
#[derive(Debug)]
pub struct DownloadScheduler {
    manifest: ChunkManifest,
    /// Serving candidates, fastest first. Shrinks on peer loss.
    peers: Vec<u32>,
    /// Chunk indices awaiting a (re-)request.
    queue: VecDeque<u32>,
    /// Requested but unanswered: chunk index → peer asked.
    outstanding: BTreeMap<u32, u32>,
    /// Verified chunk bytes, by index.
    chunks: BTreeMap<u32, Vec<u8>>,
    /// Per-chunk request attempts (drives peer rotation and give-up).
    attempts: BTreeMap<u32, u32>,
    /// Accepted payload bytes per serving peer.
    served: BTreeMap<u32, u64>,
    /// Chunks re-requested after a rejection, loss or timeout.
    retries: u64,
    /// A chunk exceeded its attempt budget — the download is dead.
    failed: Option<u32>,
    max_attempts: u32,
}

impl DownloadScheduler {
    /// A scheduler for `manifest`, fetching from `peers` (ranked fastest
    /// first — e.g. by descending bandwidth-snapshot speed to the
    /// joiner). Every chunk starts queued.
    ///
    /// # Panics
    ///
    /// If `peers` is empty — a download needs at least one source.
    pub fn new(manifest: ChunkManifest, peers: Vec<u32>) -> Self {
        assert!(
            !peers.is_empty(),
            "a chunk download needs at least one peer"
        );
        // Budget: every chunk may try every peer a few times before the
        // download is declared dead.
        let max_attempts = 4 * peers.len() as u32;
        let queue = (0..manifest.chunk_count()).collect();
        DownloadScheduler {
            manifest,
            peers,
            queue,
            outstanding: BTreeMap::new(),
            chunks: BTreeMap::new(),
            attempts: BTreeMap::new(),
            served: BTreeMap::new(),
            retries: 0,
            failed: None,
            max_attempts,
        }
    }

    /// The manifest being fetched.
    pub fn manifest(&self) -> &ChunkManifest {
        &self.manifest
    }

    /// Pops the next chunk request to put on the wire: `(peer, message)`.
    /// `None` means nothing is currently requestable — every remaining
    /// chunk is either held, in flight, or the download has
    /// [`DownloadScheduler::failed_chunk`]. Callers drain this in a loop
    /// to keep all peers busy.
    pub fn next_request(&mut self) -> Option<(u32, Message)> {
        if self.failed.is_some() || self.peers.is_empty() {
            return None;
        }
        let index = self.queue.pop_front()?;
        let attempt = *self.attempts.get(&index).unwrap_or(&0);
        // First attempt spreads chunk i over peer i mod n; each retry
        // rotates one peer further.
        let peer = self.peers[(index as usize + attempt as usize) % self.peers.len()];
        self.attempts.insert(index, attempt + 1);
        self.outstanding.insert(index, peer);
        Some((
            peer,
            Message::ChunkRequest {
                epoch: self.manifest.epoch,
                index,
            },
        ))
    }

    /// Processes one received [`Message::ChunkData`] (fields unpacked).
    /// Rejected chunks are requeued automatically; pump
    /// [`DownloadScheduler::next_request`] afterwards.
    pub fn on_chunk(
        &mut self,
        from: u32,
        epoch: u64,
        index: u32,
        checksum: u64,
        data: &[u8],
    ) -> ChunkOutcome {
        if epoch != self.manifest.epoch || index >= self.manifest.chunk_count() {
            return ChunkOutcome::Rejected;
        }
        if self.chunks.contains_key(&index) {
            // A retried chunk's earlier answer arriving late.
            self.outstanding.remove(&index);
            return ChunkOutcome::Duplicate;
        }
        if checksum == frame::checksum(data) && self.manifest.verify(index, data) {
            self.outstanding.remove(&index);
            self.chunks.insert(index, data.to_vec());
            *self.served.entry(from).or_default() += data.len() as u64;
            ChunkOutcome::Accepted
        } else {
            // NACK (peer can't serve the epoch), corruption, or a lying
            // checksum: re-source from the next peer in the rotation.
            self.outstanding.remove(&index);
            self.requeue(index);
            ChunkOutcome::Rejected
        }
    }

    /// Removes a disconnected peer from the ring and requeues everything
    /// that was outstanding at it. With no peers left the download
    /// reports [`DownloadScheduler::failed_chunk`] on the next request.
    pub fn on_peer_lost(&mut self, peer: u32) {
        self.peers.retain(|&p| p != peer);
        let orphaned: Vec<u32> = self
            .outstanding
            .iter()
            .filter_map(|(&idx, &p)| (p == peer).then_some(idx))
            .collect();
        for idx in orphaned {
            self.outstanding.remove(&idx);
            self.requeue(idx);
        }
        if self.peers.is_empty() && !self.is_complete() {
            self.failed = Some(self.queue.front().copied().unwrap_or(0));
        }
    }

    /// Requeues every in-flight request — the timeout path, called when
    /// the wire has gone idle with requests unanswered (dropped frames,
    /// a stalled peer). Each requeued chunk's retry rotates to the next
    /// peer.
    pub fn requeue_outstanding(&mut self) {
        let pending: Vec<u32> = self.outstanding.keys().copied().collect();
        for idx in pending {
            self.outstanding.remove(&idx);
            self.requeue(idx);
        }
    }

    fn requeue(&mut self, index: u32) {
        self.retries += 1;
        if *self.attempts.get(&index).unwrap_or(&0) >= self.max_attempts {
            self.failed = Some(index);
        } else {
            self.queue.push_back(index);
        }
    }

    /// Whether every chunk has been verified and stored.
    pub fn is_complete(&self) -> bool {
        self.chunks.len() as u32 == self.manifest.chunk_count()
    }

    /// The chunk that exhausted its attempt budget (or was orphaned by
    /// the last peer's loss), if the download is dead.
    pub fn failed_chunk(&self) -> Option<u32> {
        self.failed
    }

    /// Chunks re-requested so far (rejections, losses, timeouts).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Distinct peers that served at least one accepted chunk.
    pub fn sources(&self) -> BTreeSet<u32> {
        self.served.keys().copied().collect()
    }

    /// Accepted payload bytes per serving peer.
    pub fn served_bytes(&self) -> &BTreeMap<u32, u64> {
        &self.served
    }

    /// Concatenates the verified chunks back into the blob, `None` until
    /// [`DownloadScheduler::is_complete`]. The result is bit-identical
    /// to the published blob: every piece was checked against the
    /// manifest's checksums on receipt.
    pub fn assemble(&self) -> Option<Vec<u8>> {
        if !self.is_complete() {
            return None;
        }
        let mut blob = Vec::with_capacity(self.manifest.total_len as usize);
        for data in self.chunks.values() {
            blob.extend_from_slice(data);
        }
        debug_assert_eq!(blob.len() as u64, self.manifest.total_len);
        Some(blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 % 251) as u8).collect()
    }

    /// Serves a request from `store` exactly as a well-behaved peer
    /// would, returning the unpacked reply fields.
    fn serve(manifest: &ChunkManifest, store: &[u8], msg: &Message) -> (u64, u32, u64, Vec<u8>) {
        let Message::ChunkRequest { epoch, index } = *msg else {
            panic!("scheduler emits only chunk requests");
        };
        assert_eq!(epoch, manifest.epoch);
        let Some(Message::ChunkData {
            epoch,
            index,
            checksum,
            data,
        }) = manifest.chunk_reply(store, index)
        else {
            panic!("request in range");
        };
        (epoch, index, checksum, data)
    }

    #[test]
    fn manifest_roundtrips_through_its_announce() {
        let b = blob(1300);
        let m = ChunkManifest::build(3, 17, &b, 512);
        assert_eq!(m.chunk_count(), 3);
        assert_eq!(m.chunk_range(2), Some(1024..1300));
        assert_eq!(m.chunk_range(3), None);
        assert!(m.matches(&b));
        assert!(!m.matches(&blob(1299)));
        let back = ChunkManifest::from_announce(&m.announce()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn inconsistent_announces_are_refused() {
        let m = ChunkManifest::build(1, 1, &blob(100), 40);
        let Message::ManifestAnnounce {
            epoch,
            round,
            total_len,
            chunk_size,
            checksums,
        } = m.announce()
        else {
            unreachable!()
        };
        // Lying chunk count.
        let mut bad = checksums.clone();
        bad.push(7);
        assert!(ChunkManifest::from_announce(&Message::ManifestAnnounce {
            epoch,
            round,
            total_len,
            chunk_size,
            checksums: bad,
        })
        .is_none());
        // Zero chunk size with a non-empty blob.
        assert!(ChunkManifest::from_announce(&Message::ManifestAnnounce {
            epoch,
            round,
            total_len,
            chunk_size: 0,
            checksums,
        })
        .is_none());
        // Wrong variant.
        assert!(ChunkManifest::from_announce(&Message::Shutdown).is_none());
    }

    #[test]
    fn download_fans_over_peers_and_assembles_bit_identically() {
        let b = blob(5000);
        let m = ChunkManifest::build(9, 4, &b, 1000);
        let mut dl = DownloadScheduler::new(m.clone(), vec![3, 7, 11]);
        let mut asked = BTreeSet::new();
        while let Some((peer, req)) = dl.next_request() {
            asked.insert(peer);
            let (e, i, c, d) = serve(&m, &b, &req);
            assert_eq!(dl.on_chunk(peer, e, i, c, &d), ChunkOutcome::Accepted);
        }
        assert!(dl.is_complete());
        assert_eq!(dl.assemble().unwrap(), b);
        assert_eq!(asked.len(), 3, "5 chunks over 3 peers touch every peer");
        assert_eq!(dl.sources(), asked);
        assert_eq!(dl.retries(), 0);
        assert_eq!(dl.served_bytes().values().sum::<u64>(), 5000);
    }

    #[test]
    fn corrupt_chunks_are_resourced_from_another_peer() {
        let b = blob(3000);
        let m = ChunkManifest::build(2, 1, &b, 1024);
        let mut dl = DownloadScheduler::new(m.clone(), vec![0, 1]);
        let mut corruptions = 0;
        while let Some((peer, req)) = dl.next_request() {
            let (e, i, mut c, mut d) = serve(&m, &b, &req);
            // Peer 0 always serves garbage (bit flip in the data).
            if peer == 0 {
                d[0] ^= 0x80;
                corruptions += 1;
                assert_eq!(dl.on_chunk(peer, e, i, c, &d), ChunkOutcome::Rejected);
                continue;
            }
            // Peer 1 occasionally lies about the checksum instead.
            if corruptions == 1 && i == 1 && dl.retries() == 1 {
                c ^= 1;
                assert_eq!(dl.on_chunk(peer, e, i, c, &d), ChunkOutcome::Rejected);
                continue;
            }
            assert_eq!(dl.on_chunk(peer, e, i, c, &d), ChunkOutcome::Accepted);
        }
        assert!(dl.is_complete());
        assert_eq!(dl.assemble().unwrap(), b);
        assert!(dl.retries() > 0);
        // Everything accepted came from the honest peer.
        assert_eq!(dl.sources(), BTreeSet::from([1]));
    }

    #[test]
    fn nack_is_a_rejection_that_rotates_peers() {
        let b = blob(2048);
        let m = ChunkManifest::build(5, 2, &b, 1024);
        let mut dl = DownloadScheduler::new(m.clone(), vec![4, 6]);
        while let Some((peer, req)) = dl.next_request() {
            let Message::ChunkRequest { epoch, index } = req else {
                unreachable!()
            };
            if peer == 4 {
                // Peer 4 has no matching blob: NACK (empty, checksum 0).
                assert_eq!(
                    dl.on_chunk(peer, epoch, index, 0, &[]),
                    ChunkOutcome::Rejected
                );
                continue;
            }
            let (e, i, c, d) = serve(&m, &b, &req);
            assert_eq!(dl.on_chunk(peer, e, i, c, &d), ChunkOutcome::Accepted);
        }
        assert_eq!(dl.assemble().unwrap(), b);
        assert_eq!(dl.sources(), BTreeSet::from([6]));
    }

    #[test]
    fn duplicates_are_idempotent_and_wrong_epoch_is_rejected() {
        let b = blob(600);
        let m = ChunkManifest::build(8, 3, &b, 512);
        let mut dl = DownloadScheduler::new(m.clone(), vec![1]);
        let (peer, req) = dl.next_request().unwrap();
        let (e, i, c, d) = serve(&m, &b, &req);
        assert_eq!(dl.on_chunk(peer, e, i, c, &d), ChunkOutcome::Accepted);
        assert_eq!(dl.on_chunk(peer, e, i, c, &d), ChunkOutcome::Duplicate);
        // Wrong epoch never counts, even with valid bytes — and it is
        // not an answer to our request either, so the chunk stays
        // outstanding until the timeout path requeues it.
        let (peer2, req2) = dl.next_request().unwrap();
        let (_, i2, c2, d2) = serve(&m, &b, &req2);
        assert_eq!(
            dl.on_chunk(peer2, e + 1, i2, c2, &d2),
            ChunkOutcome::Rejected
        );
        assert_eq!(
            dl.next_request(),
            None,
            "chunk 1 still awaits its real reply"
        );
        dl.requeue_outstanding();
        let (peer3, req3) = dl.next_request().unwrap();
        let (e3, i3, c3, d3) = serve(&m, &b, &req3);
        assert_eq!(dl.on_chunk(peer3, e3, i3, c3, &d3), ChunkOutcome::Accepted);
        assert_eq!(dl.assemble().unwrap(), b);
    }

    #[test]
    fn peer_loss_requeues_and_timeout_resumes() {
        let b = blob(4096);
        let m = ChunkManifest::build(1, 0, &b, 1024);
        let mut dl = DownloadScheduler::new(m.clone(), vec![2, 5]);
        // Put everything in flight, then lose peer 2 before any reply.
        let mut inflight = Vec::new();
        while let Some((peer, req)) = dl.next_request() {
            inflight.push((peer, req));
        }
        dl.on_peer_lost(2);
        // Answers from the lost peer never arrive; requests to peer 5
        // were also dropped by the network. Timeout requeues the rest.
        dl.requeue_outstanding();
        while let Some((peer, req)) = dl.next_request() {
            assert_eq!(peer, 5, "only the surviving peer is asked");
            let (e, i, c, d) = serve(&m, &b, &req);
            dl.on_chunk(peer, e, i, c, &d);
        }
        assert_eq!(dl.assemble().unwrap(), b);
        assert!(dl.retries() >= 4);
    }

    #[test]
    fn exhausted_attempts_fail_the_download() {
        let b = blob(1000);
        let m = ChunkManifest::build(1, 0, &b, 1000);
        let mut dl = DownloadScheduler::new(m.clone(), vec![9]);
        let mut rounds = 0;
        while let Some((peer, req)) = dl.next_request() {
            let Message::ChunkRequest { epoch, index } = req else {
                unreachable!()
            };
            // The only peer NACKs forever.
            dl.on_chunk(peer, epoch, index, 0, &[]);
            rounds += 1;
            assert!(rounds <= 64, "attempt budget must bound the loop");
        }
        assert_eq!(dl.failed_chunk(), Some(0));
        assert!(!dl.is_complete());
        assert!(dl.assemble().is_none());
    }

    #[test]
    fn losing_every_peer_fails_the_download() {
        let b = blob(100);
        let m = ChunkManifest::build(1, 0, &b, 50);
        let mut dl = DownloadScheduler::new(m, vec![3]);
        let _ = dl.next_request();
        dl.on_peer_lost(3);
        assert!(dl.failed_chunk().is_some());
        assert_eq!(dl.next_request(), None);
    }

    #[test]
    fn empty_blob_download_is_trivially_complete() {
        let m = ChunkManifest::build(1, 0, &[], 64);
        assert_eq!(m.chunk_count(), 0);
        let dl = DownloadScheduler::new(m, vec![1]);
        assert!(dl.is_complete());
        assert_eq!(dl.assemble().unwrap(), Vec::<u8>::new());
    }
}
