//! A localhost TCP transport (`std::net` only, behind the `tcp`
//! feature).
//!
//! Every node gets its own listener on `127.0.0.1:0`; a sender lazily
//! opens one connection per `(from, to)` pair, writes a 4-byte sender
//! hello once, then streams `saps-proto` frames. Receivers accept
//! connections non-blockingly and reassemble frames with
//! [`saps_proto::frame::FrameDecoder`], so arbitrary TCP segmentation is
//! handled. Delivery is FIFO per sender (one ordered stream each) but
//! unordered across senders — exactly the [`Transport`] contract the
//! node state machines are written against.
//!
//! This transport exists to prove the protocol runs over real sockets;
//! it is in-process (all endpoints in one address space) and localhost
//! only.

use crate::transport::{Addr, Transport, WireTap};
use crate::ClusterError;
use bytes::Bytes;
use saps_proto::frame::FrameDecoder;
use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

fn io_err(what: &str, e: std::io::Error) -> ClusterError {
    ClusterError::Transport(format!("{what}: {e}"))
}

/// Encodes a node address as the 4-byte connection hello: the low two
/// bits select the address kind, the rest carry the rank/id.
fn addr_id(a: Addr) -> u32 {
    match a {
        Addr::Coordinator => 0,
        Addr::Worker(r) => (r << 2) | 1,
        Addr::Replica(r) => (r << 2) | 2,
        Addr::Client(c) => (c << 2) | 3,
    }
}

fn id_addr(id: u32) -> Addr {
    match id & 3 {
        1 => Addr::Worker(id >> 2),
        2 => Addr::Replica(id >> 2),
        3 => Addr::Client(id >> 2),
        _ => Addr::Coordinator,
    }
}

/// One accepted inbound connection: who is talking and the incremental
/// frame reassembly for their stream.
struct Inbound {
    from: Option<Addr>,
    stream: TcpStream,
    decoder: FrameDecoder,
    hello: Vec<u8>,
    /// Peer closed its stream; the connection is pruned once drained so
    /// later polls stop issuing read syscalls on a dead socket.
    closed: bool,
}

/// One node's receive side.
struct Endpoint {
    listener: TcpListener,
    inbound: Vec<Inbound>,
    ready: VecDeque<(Addr, Bytes)>,
}

/// One outgoing connection: a nonblocking stream plus the bytes not yet
/// accepted by the kernel. Buffering in userspace is what keeps the
/// single-threaded pump deadlock-free: a frame larger than the socket
/// buffers (a multi-MB `FinalModel`, say) parks here and drains as the
/// receiver reads, instead of blocking the thread that would do the
/// reading.
struct OutConn {
    stream: TcpStream,
    pending: VecDeque<u8>,
}

impl OutConn {
    /// Writes as much buffered data as the kernel will take right now.
    fn try_flush(&mut self) -> Result<(), ClusterError> {
        while !self.pending.is_empty() {
            let (head, _) = self.pending.as_slices();
            match self.stream.write(head) {
                Ok(0) => {
                    return Err(ClusterError::Transport(
                        "connection closed with data pending".into(),
                    ))
                }
                Ok(n) => {
                    self.pending.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => return Err(io_err("write", e)),
            }
        }
        Ok(())
    }
}

/// The localhost TCP transport.
pub struct TcpTransport {
    endpoints: BTreeMap<Addr, Endpoint>,
    ports: BTreeMap<Addr, SocketAddr>,
    outbound: BTreeMap<(Addr, Addr), OutConn>,
    tap: WireTap,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("endpoints", &self.endpoints.len())
            .field("connections", &self.outbound.len())
            .finish()
    }
}

impl TcpTransport {
    /// Binds one listener per node (the coordinator plus `workers`
    /// workers) on ephemeral localhost ports.
    pub fn for_cluster(workers: usize, tap: WireTap) -> Result<Self, ClusterError> {
        let mut addrs = vec![Addr::Coordinator];
        addrs.extend((0..workers as u32).map(Addr::Worker));
        Self::for_nodes(&addrs, tap)
    }

    /// Binds one listener per address in `nodes` — any mix of training
    /// and serving addresses (the `saps-serve` plane uses this to put
    /// replicas and clients on the same socket fabric).
    pub fn for_nodes(nodes: &[Addr], tap: WireTap) -> Result<Self, ClusterError> {
        let mut endpoints = BTreeMap::new();
        let mut ports = BTreeMap::new();
        for &addr in nodes {
            let listener =
                TcpListener::bind("127.0.0.1:0").map_err(|e| io_err("bind listener", e))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| io_err("set_nonblocking", e))?;
            ports.insert(
                addr,
                listener.local_addr().map_err(|e| io_err("local_addr", e))?,
            );
            endpoints.insert(
                addr,
                Endpoint {
                    listener,
                    inbound: Vec::new(),
                    ready: VecDeque::new(),
                },
            );
        }
        Ok(TcpTransport {
            endpoints,
            ports,
            outbound: BTreeMap::new(),
            tap,
        })
    }

    /// Accepts pending connections and drains readable streams for `at`,
    /// queueing completed frames.
    fn poll(&mut self, at: Addr) -> Result<(), ClusterError> {
        let ep = self
            .endpoints
            .get_mut(&at)
            .ok_or_else(|| ClusterError::Transport(format!("unknown endpoint {at}")))?;
        loop {
            match ep.listener.accept() {
                Ok((stream, _)) => {
                    stream
                        .set_nonblocking(true)
                        .map_err(|e| io_err("set_nonblocking", e))?;
                    ep.inbound.push(Inbound {
                        from: None,
                        stream,
                        decoder: FrameDecoder::new(),
                        hello: Vec::new(),
                        closed: false,
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => return Err(io_err("accept", e)),
            }
        }
        let mut buf = [0u8; 16 * 1024];
        for conn in &mut ep.inbound {
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        // Peer closed; any partial frame left in the
                        // decoder can never complete.
                        conn.closed = true;
                        break;
                    }
                    Ok(n) => {
                        let mut bytes = &buf[..n];
                        // First 4 bytes on a connection identify the sender.
                        if conn.from.is_none() {
                            let need = 4 - conn.hello.len();
                            let take = need.min(bytes.len());
                            conn.hello.extend_from_slice(&bytes[..take]);
                            bytes = &bytes[take..];
                            if conn.hello.len() == 4 {
                                let id =
                                    u32::from_le_bytes(conn.hello[..].try_into().expect("4 bytes"));
                                conn.from = Some(id_addr(id));
                            }
                        }
                        if !bytes.is_empty() {
                            conn.decoder.feed(bytes);
                        }
                        let from = match conn.from {
                            Some(f) => f,
                            None => continue,
                        };
                        // Split the stream into verbatim frames — the
                        // transport moves bytes, it never re-encodes;
                        // the receiving node's decode verifies bodies.
                        while let Some(raw) = conn.decoder.next_frame()? {
                            ep.ready.push_back((from, Bytes::from(raw)));
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) => return Err(io_err("read", e)),
                }
            }
        }
        ep.inbound.retain(|c| !c.closed);
        Ok(())
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, from: Addr, to: Addr, frame: Bytes) -> Result<(), ClusterError> {
        let port = *self
            .ports
            .get(&to)
            .ok_or_else(|| ClusterError::Transport(format!("unknown destination {to}")))?;
        let conn = match self.outbound.entry((from, to)) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(slot) => {
                let stream = TcpStream::connect(port).map_err(|e| io_err("connect", e))?;
                stream
                    .set_nodelay(true)
                    .map_err(|e| io_err("set_nodelay", e))?;
                stream
                    .set_nonblocking(true)
                    .map_err(|e| io_err("set_nonblocking", e))?;
                let mut pending = VecDeque::new();
                // First 4 bytes on a connection identify the sender.
                pending.extend(addr_id(from).to_le_bytes());
                slot.insert(OutConn { stream, pending })
            }
        };
        self.tap.record(from, to, &frame);
        conn.pending.extend(frame.as_slice());
        conn.try_flush()
    }

    fn recv(&mut self, at: Addr) -> Result<Option<(Addr, Bytes)>, ClusterError> {
        // Drain parked outgoing bytes first: the pump is single-threaded,
        // so this recv sweep is also the moment kernel buffers freed by
        // the peers' reads can accept more of our backlog.
        for conn in self.outbound.values_mut() {
            conn.try_flush()?;
        }
        self.poll(at)?;
        Ok(self
            .endpoints
            .get_mut(&at)
            .and_then(|ep| ep.ready.pop_front()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_proto::{frame, Message};

    #[test]
    fn frames_cross_real_sockets() {
        let tap = WireTap::new();
        let mut t = TcpTransport::for_cluster(2, tap.clone()).unwrap();
        let msg = Message::MaskedPayload {
            round: 1,
            values: vec![1.0, -2.0, 3.5],
        };
        t.send(Addr::Worker(0), Addr::Worker(1), frame::encode(&msg))
            .unwrap();
        // Nonblocking localhost delivery: poll until the bytes land.
        let (from, bytes) = loop {
            if let Some(got) = t.recv(Addr::Worker(1)).unwrap() {
                break got;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        };
        assert_eq!(from, Addr::Worker(0));
        assert_eq!(frame::decode(&bytes).unwrap(), msg);
        assert_eq!(tap.snapshot().data_bytes, 12);
    }

    #[test]
    fn frames_larger_than_socket_buffers_do_not_deadlock() {
        // A multi-MB FinalModel far exceeds default localhost socket
        // buffers; the nonblocking send must park the overflow in
        // userspace and drain it as the receiver reads, instead of
        // blocking the single pump thread forever.
        let tap = WireTap::new();
        let mut t = TcpTransport::for_cluster(1, tap).unwrap();
        let msg = Message::FinalModel {
            rank: 0,
            checkpoint: (0..4_000_000u32).map(|i| i as u8).collect(),
        };
        let frame_bytes = frame::encode(&msg);
        t.send(Addr::Worker(0), Addr::Coordinator, frame_bytes.clone())
            .unwrap();
        let (from, got) = loop {
            if let Some(got) = t.recv(Addr::Coordinator).unwrap() {
                break got;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        };
        assert_eq!(from, Addr::Worker(0));
        assert_eq!(got, frame_bytes);
    }

    #[test]
    fn partial_writes_park_in_userspace_and_drain_across_recv_sweeps() {
        // A frame bigger than the kernel's socket buffers is only
        // partially accepted by the first write; the rest must sit in
        // `OutConn::pending` and drain opportunistically on later recv
        // sweeps — never block, never be dropped.
        let tap = WireTap::new();
        let mut t = TcpTransport::for_cluster(1, tap).unwrap();
        let msg = Message::FinalModel {
            rank: 0,
            checkpoint: vec![0xAB; 8_000_000],
        };
        let frame_bytes = frame::encode(&msg);
        t.send(Addr::Worker(0), Addr::Coordinator, frame_bytes.clone())
            .unwrap();
        let backlog = t.outbound[&(Addr::Worker(0), Addr::Coordinator)]
            .pending
            .len();
        assert!(
            backlog > 0,
            "an 8 MB frame must overflow localhost socket buffers"
        );
        let (_, got) = loop {
            if let Some(got) = t.recv(Addr::Coordinator).unwrap() {
                break got;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        };
        assert_eq!(got, frame_bytes);
        assert!(
            t.outbound[&(Addr::Worker(0), Addr::Coordinator)]
                .pending
                .is_empty(),
            "delivery must have drained the userspace backlog"
        );
    }

    #[test]
    fn peer_disconnect_mid_frame_is_pruned_without_error() {
        // A raw socket sends its hello plus half a frame and vanishes.
        // The dangling bytes can never complete, so the connection must
        // be pruned on the next sweep — no hang, no transport error.
        let tap = WireTap::new();
        let mut t = TcpTransport::for_cluster(1, tap).unwrap();
        let port = t.ports[&Addr::Worker(0)];
        {
            let mut s = TcpStream::connect(port).unwrap();
            let raw = frame::encode(&Message::Join { rank: 0 });
            s.write_all(&addr_id(Addr::Coordinator).to_le_bytes())
                .unwrap();
            s.write_all(&raw[..raw.len() / 2]).unwrap();
        } // dropped: peer disconnects with a partial frame in flight
        for _ in 0..50 {
            assert!(t.recv(Addr::Worker(0)).unwrap().is_none());
            if t.endpoints[&Addr::Worker(0)].inbound.is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(
            t.endpoints[&Addr::Worker(0)].inbound.is_empty(),
            "a dead connection with an incomplete frame must be pruned"
        );
    }

    #[test]
    fn peer_disconnect_after_complete_frames_still_delivers_them() {
        // Disconnecting is not data loss: frames fully on the wire
        // before the close must reach the receiver, and only then is
        // the dead connection forgotten.
        let tap = WireTap::new();
        let mut t = TcpTransport::for_cluster(1, tap).unwrap();
        let port = t.ports[&Addr::Worker(0)];
        let msgs = [Message::Join { rank: 0 }, Message::Leave { rank: 0 }];
        {
            let mut s = TcpStream::connect(port).unwrap();
            s.write_all(&addr_id(Addr::Coordinator).to_le_bytes())
                .unwrap();
            for m in &msgs {
                s.write_all(&frame::encode(m)).unwrap();
            }
        } // dropped: clean close right after two complete frames
        let mut got = Vec::new();
        for _ in 0..200 {
            if let Some((from, bytes)) = t.recv(Addr::Worker(0)).unwrap() {
                assert_eq!(from, Addr::Coordinator);
                got.push(frame::decode(&bytes).unwrap());
                if got.len() == msgs.len() {
                    break;
                }
            } else {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        assert_eq!(got, msgs);
        assert!(
            t.endpoints[&Addr::Worker(0)].inbound.is_empty(),
            "the closed connection must be pruned once drained"
        );
    }

    #[test]
    fn serving_addresses_ride_the_same_fabric() {
        // The serving plane binds replicas and clients with for_nodes;
        // the tagged hello must round-trip the new address kinds.
        let tap = WireTap::new();
        let mut t =
            TcpTransport::for_nodes(&[Addr::Replica(0), Addr::Client(3)], tap.clone()).unwrap();
        let msg = Message::InferRequest {
            id: 9,
            features: vec![1.0, 2.0],
        };
        t.send(Addr::Client(3), Addr::Replica(0), frame::encode(&msg))
            .unwrap();
        let (from, bytes) = loop {
            if let Some(got) = t.recv(Addr::Replica(0)).unwrap() {
                break got;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        };
        assert_eq!(from, Addr::Client(3));
        assert_eq!(frame::decode(&bytes).unwrap(), msg);
        assert_eq!(tap.snapshot().serve_bytes, frame::encoded_len(&msg) as u64);
    }

    #[test]
    fn per_sender_ordering_survives_segmentation() {
        let tap = WireTap::new();
        let mut t = TcpTransport::for_cluster(1, tap).unwrap();
        let msgs: Vec<Message> = (0..20)
            .map(|i| Message::RoundEnd {
                round: i,
                rank: 0,
                loss: i as f32,
                acc: 0.0,
            })
            .collect();
        for m in &msgs {
            t.send(Addr::Worker(0), Addr::Coordinator, frame::encode(m))
                .unwrap();
        }
        let mut got = Vec::new();
        while got.len() < msgs.len() {
            match t.recv(Addr::Coordinator).unwrap() {
                Some((from, bytes)) => {
                    assert_eq!(from, Addr::Worker(0));
                    got.push(frame::decode(&bytes).unwrap());
                }
                None => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        }
        assert_eq!(got, msgs);
    }
}
