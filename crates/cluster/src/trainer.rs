//! The cluster driver: a [`Trainer`] whose rounds run through real
//! serialized messages.

use crate::node::{CoordinatorNode, NodeSnapshot, Outbox, RoundMeta, WorkerNode};
use crate::transport::{Addr, LoopbackTransport, Transport, WireTap};
use crate::ClusterError;
use bytes::Bytes;
use rand::rngs::StdRng;
use saps_core::{
    build_replicas, checkpoint, saps_round_report, AlgorithmRegistry, AlgorithmSpec, ConfigError,
    Recorder, RoundCtx, RoundReport, SapsConfig, Trainer,
};
use saps_data::Dataset;
use saps_netsim::BandwidthMatrix;
use saps_nn::Model;
use saps_proto::{frame, Message};
use saps_runtime::Executor;
use std::collections::{BTreeMap, BTreeSet};

/// Sweeps of an empty transport tolerated before a round is declared
/// stalled (each idle sweep sleeps 1 ms, so this is a ~5 s timeout for
/// stream transports; the loopback transport either completes or stalls
/// on the first idle sweep).
const STALL_SWEEP_LIMIT: u32 = 5_000;

/// The typed stall message — matched by the catch-up driver to tell
/// "the wire went idle with chunk requests unanswered" (recoverable by
/// re-requesting) apart from genuine protocol violations.
const STALL_MSG: &str = "transport quiescent but the awaited protocol state never arrived";

/// SAPS-PSGD driven as a message-passing cluster: a
/// [`CoordinatorNode`] and `n` [`WorkerNode`]s exchanging
/// `saps-proto` frames over a pluggable [`Transport`].
///
/// `ClusterTrainer` implements [`Trainer`], so the standard
/// [`saps_core::Experiment`] driver runs a cluster experiment end to end
/// — events, observers, evaluation cadence and all — with every round
/// flowing through encode → transport → decode. The training state it
/// produces is **bit-identical** to the in-memory
/// [`saps_core::SapsPsgd`] under the same spec and seed (pinned by
/// `tests/cluster_conformance.rs`): both paths share the same
/// [`saps_core::SapsControl`] planning state, [`saps_core::Worker`]
/// arithmetic and reduction order.
///
/// Accounting follows Table I exactly: each masked payload bills its
/// values section (`4·nnz` bytes) to the sender/receiver worker rows,
/// and all control-plane bytes — control frames plus every
/// training-frame envelope — are billed to the server row
/// ([`saps_netsim::TrafficAccountant::record_control`]). Round *timing*
/// is priced from the full framed transfer sizes, so the bytes the
/// `saps-netsim` time model simulates are the bytes actually put on the
/// wire. Evaluation-time model collection (`FetchModel`/`FinalModel`)
/// is instrumentation, not protocol traffic: metered by the
/// [`WireTap`]'s model-plane counter, never billed to the accountant.
///
/// **Byzantine tolerance**: a worker whose traffic is provably invalid
/// — a frame that fails to decode, or a payload violating the round's
/// shared-mask contract — is quarantined. The attempt is aborted, every
/// worker rolls back to the round's start, the offender is expelled
/// through the normal churn path and the round replays without it.
/// Because peer selection rebuilds as a pure function of the active
/// set, honest workers end bit-identical to a run where the offender
/// left gracefully (pinned by `tests/fault_injection.rs`).
///
/// Other protocol violations (a corrupted coordinator frame, a stalled
/// round) are driver bugs, not recoverable conditions —
/// [`Trainer::step`] panics with the underlying [`ClusterError`];
/// [`ClusterTrainer::try_step`] surfaces it as a value instead.
pub struct ClusterTrainer<T: Transport> {
    coordinator: CoordinatorNode,
    workers: Vec<WorkerNode>,
    transport: T,
    tap: WireTap,
    eval_model: Model,
    n_params: usize,
    batch_size: usize,
    /// Control-plane bytes already billed to the accountant's server
    /// row; the difference to the tap's cumulative counter is billed at
    /// each round close, so between-round control frames (churn,
    /// bandwidth reports) are charged exactly once.
    billed_control: u64,
    /// Ranks expelled by byzantine recovery: their frames are dropped on
    /// receipt and they take no part in any later round.
    quarantined: BTreeSet<u32>,
    /// Idle sweeps tolerated before a round is declared stalled — see
    /// [`ClusterTrainer::with_stall_limit`].
    stall_limit: u32,
    /// Telemetry handle. Captured from each round's [`RoundCtx`] (the
    /// `Experiment` driver installs it there) or set directly with
    /// [`ClusterTrainer::with_telemetry`], so failure paths that run
    /// outside a round context — churn, catch-up — can still dump the
    /// flight recorder.
    telemetry: Recorder,
}

impl<T: Transport> std::fmt::Debug for ClusterTrainer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterTrainer")
            .field("workers", &self.workers.len())
            .field("n_params", &self.n_params)
            .finish()
    }
}

impl ClusterTrainer<LoopbackTransport> {
    /// Builds a cluster over the default in-process loopback transport,
    /// metering its wire bytes through `tap`.
    pub fn loopback(
        cfg: SapsConfig,
        parts: Vec<Dataset>,
        bw: &BandwidthMatrix,
        factory: impl Fn(&mut StdRng) -> Model,
        tap: WireTap,
    ) -> Result<Self, ConfigError> {
        let transport = LoopbackTransport::new(tap.clone());
        Self::with_transport(cfg, parts, bw, factory, transport, tap)
    }
}

impl<T: Transport> ClusterTrainer<T> {
    /// Builds a cluster over an arbitrary transport. `tap` must be the
    /// tap `transport` reports to — the driver reads its per-round
    /// transfer log to bill and price rounds.
    ///
    /// Construction mirrors [`saps_core::SapsPsgd::with_partitions`]
    /// exactly (same validation, same replica seeding), so both paths
    /// start from the same state.
    pub fn with_transport(
        cfg: SapsConfig,
        parts: Vec<Dataset>,
        bw: &BandwidthMatrix,
        factory: impl Fn(&mut StdRng) -> Model,
        transport: T,
        tap: WireTap,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if parts.len() != cfg.workers {
            return Err(ConfigError::invalid(
                "ClusterTrainer",
                format!(
                    "{} partitions for {} workers (need one each)",
                    parts.len(),
                    cfg.workers
                ),
            ));
        }
        if bw.len() != cfg.workers {
            return Err(ConfigError::invalid(
                "ClusterTrainer",
                format!(
                    "bandwidth matrix covers {} workers, config has {}",
                    bw.len(),
                    cfg.workers
                ),
            ));
        }
        let (workers, eval_model) = build_replicas(parts, cfg.seed, factory);
        let n_params = eval_model.num_params();
        let nodes = workers
            .into_iter()
            .map(|w| WorkerNode::new(w, cfg.batch_size, cfg.lr, cfg.compression))
            .collect();
        // The tap may be shared across experiments (cluster_registry
        // clones one handle into every trainer it builds): bill only
        // control bytes framed from this trainer's start, not whatever a
        // previous run already accumulated.
        let billed_control = tap.snapshot().control_bytes;
        let mut coordinator = CoordinatorNode::new(bw, cfg.bthres, cfg.tthres, cfg.seed);
        coordinator.set_shard_size(cfg.shard_size);
        Ok(ClusterTrainer {
            coordinator,
            workers: nodes,
            transport,
            tap,
            eval_model,
            n_params,
            batch_size: cfg.batch_size,
            billed_control,
            quarantined: BTreeSet::new(),
            stall_limit: STALL_SWEEP_LIMIT,
            telemetry: Recorder::disabled(),
        })
    }

    /// Replaces the idle-sweep stall limit (default ~5 s of quiescence).
    /// Fault-injection tests lower it so a transport that silently drops
    /// frames surfaces its typed stall error in milliseconds.
    pub fn with_stall_limit(mut self, sweeps: u32) -> Self {
        self.stall_limit = sweeps;
        self
    }

    /// Attaches a telemetry recorder for drivers that step the cluster
    /// directly (the `Experiment` driver instead hands its recorder to
    /// every [`RoundCtx`], which this trainer captures per round).
    /// Telemetry never perturbs training — pinned by
    /// `tests/telemetry.rs`.
    pub fn with_telemetry(mut self, telemetry: Recorder) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Ranks expelled by byzantine recovery, ascending.
    pub fn quarantined(&self) -> Vec<u32> {
        self.quarantined.iter().copied().collect()
    }

    /// The wire tap this cluster meters through.
    pub fn tap(&self) -> &WireTap {
        &self.tap
    }

    /// Direct access to a worker node (tests, conformance checks).
    pub fn worker(&self, rank: usize) -> &WorkerNode {
        &self.workers[rank]
    }

    /// Ranks of currently active workers.
    pub fn active_ranks(&self) -> Vec<usize> {
        self.coordinator.active_ranks()
    }

    /// Collects one worker's model through real
    /// [`Message::FetchModel`]/[`Message::FinalModel`] frames, returning
    /// the decoded checkpoint `(params, rounds_done)`.
    pub fn fetch_model(&mut self, rank: usize) -> Result<(Vec<f32>, u64), ClusterError> {
        let mut out = Outbox::new();
        self.coordinator.request_models(&[rank], &mut out);
        self.dispatch(Addr::Coordinator, out)?;
        self.pump_until(Executor::sequential(), |c, _| c.models_complete())?;
        let blob = self
            .coordinator
            .take_models()
            .remove(&(rank as u32))
            .ok_or_else(|| ClusterError::Protocol(format!("no model collected for {rank}")))?;
        checkpoint::decode(Bytes::from(blob))
            .map_err(|e| ClusterError::Protocol(format!("final model checkpoint: {e}")))
    }

    /// The consensus (average) model over active workers, collected
    /// through the wire — the same rank-ascending f32 reduction
    /// [`saps_core::SapsPsgd::average_model`] performs, so the result is
    /// bit-identical to the in-memory consensus.
    pub fn consensus_model(&mut self) -> Result<Vec<f32>, ClusterError> {
        let ranks = self.coordinator.active_ranks();
        let mut out = Outbox::new();
        self.coordinator.request_models(&ranks, &mut out);
        self.dispatch(Addr::Coordinator, out)?;
        self.pump_until(Executor::sequential(), |c, _| c.models_complete())?;
        let models = self.coordinator.take_models();
        let mut acc = vec![0.0f32; self.n_params];
        for (rank, blob) in models {
            let (params, _) = checkpoint::decode(Bytes::from(blob))
                .map_err(|e| ClusterError::Protocol(format!("model from rank {rank}: {e}")))?;
            if params.len() != self.n_params {
                return Err(ClusterError::Protocol(format!(
                    "model from rank {rank} has {} params, expected {}",
                    params.len(),
                    self.n_params
                )));
            }
            for (a, v) in acc.iter_mut().zip(&params) {
                *a += v;
            }
        }
        let inv = 1.0 / ranks.len() as f32;
        for a in &mut acc {
            *a *= inv;
        }
        Ok(acc)
    }

    /// The coordinator node (tests, churn-race observability — e.g.
    /// [`CoordinatorNode::late_models`]).
    pub fn coordinator(&self) -> &CoordinatorNode {
        &self.coordinator
    }

    /// Publishes the current model as a chunked checkpoint epoch: pulls
    /// one worker's checkpoint blob over the wire, has the coordinator
    /// build and broadcast the chunk manifest
    /// ([`Message::ManifestAnnounce`]), and waits until every active
    /// worker has heard it. Workers whose state matches the blob become
    /// chunk sources; joiners catch up from them with
    /// [`ClusterTrainer::catch_up_worker`].
    pub fn publish_epoch_checkpoint(&mut self, chunk_size: u32) -> Result<(), ClusterError> {
        let ranks = self.coordinator.active_ranks();
        let donor = *ranks.first().ok_or_else(|| {
            ClusterError::Protocol("no active workers to publish a checkpoint from".into())
        })?;
        let mut out = Outbox::new();
        self.coordinator.request_models(&[donor], &mut out);
        self.dispatch(Addr::Coordinator, out)?;
        self.pump_until(Executor::sequential(), |c, _| c.models_complete())?;
        // The raw blob, never re-encoded: the manifest's checksums must
        // match the donor's bytes bit-exactly so the donor (and every
        // in-sync replica) can prove it serves the published epoch.
        let blob = self
            .coordinator
            .take_models()
            .remove(&(donor as u32))
            .ok_or_else(|| {
                ClusterError::Protocol(format!("no checkpoint collected from donor {donor}"))
            })?;
        let mut out = Outbox::new();
        let epoch = self
            .coordinator
            .publish_manifest(&blob, chunk_size, self.coordinator.rounds_done(), &mut out)
            .epoch;
        self.dispatch(Addr::Coordinator, out)?;
        self.pump_until(Executor::sequential(), move |_, ws| {
            ranks
                .iter()
                .all(|&r| ws[r].heard_manifest().is_some_and(|m| m.epoch == epoch))
        })
    }

    /// Catches `rank` up to the published checkpoint epoch by chunked
    /// download: re-announces the manifest to the joiner (it may have
    /// joined after the broadcast), then fans its chunk requests across
    /// every other active worker, fastest first in the coordinator's
    /// bandwidth snapshot ([`CoordinatorNode::rank_peers`]). Lost or
    /// corrupt chunks are re-sourced from the next ranked peer; if the
    /// wire goes quiescent with requests unanswered, the outstanding
    /// chunks are re-requested. Exhausting every source surfaces
    /// [`ClusterError::ResyncFailed`].
    pub fn catch_up_worker(&mut self, rank: usize) -> Result<(), ClusterError> {
        let manifest = self.coordinator.manifest().cloned().ok_or_else(|| {
            ClusterError::Protocol("catch-up before any checkpoint epoch was published".into())
        })?;
        let epoch = manifest.epoch;
        self.transport.send(
            Addr::Coordinator,
            Addr::Worker(rank as u32),
            frame::try_encode(&manifest.announce())?,
        )?;
        self.pump_until(Executor::sequential(), |_, ws| {
            ws[rank].heard_manifest().is_some_and(|m| m.epoch == epoch)
        })?;
        let peers = self.coordinator.rank_peers(rank);
        let donor = peers.first().copied().unwrap_or(rank as u32);
        let mut out = Outbox::new();
        self.workers[rank].begin_catch_up(peers, &mut out)?;
        self.dispatch(Addr::Worker(rank as u32), out)?;
        // Bound the idle-requeue loop: each pass re-requests every
        // outstanding chunk, so a wire that keeps eating frames runs the
        // per-chunk attempt budget dry long before this trips.
        const REQUEUE_LIMIT: u32 = 64;
        let mut requeues = 0u32;
        loop {
            if let Some(chunk) = self.workers[rank].download_failed() {
                self.telemetry.add("cluster.resync_failures", 1);
                self.telemetry.event(
                    "resync.failed",
                    None,
                    vec![
                        ("rank", rank.into()),
                        ("donor", donor.into()),
                        ("chunk", chunk.into()),
                    ],
                );
                self.telemetry.crash_dump("resync failed");
                return Err(ClusterError::ResyncFailed {
                    donor,
                    rank: rank as u32,
                    detail: format!("chunk {chunk} exhausted every serving peer"),
                });
            }
            if !self.workers[rank].catching_up() {
                self.telemetry.add("cluster.catchups", 1);
                let mut fields = vec![
                    ("rank", rank.into()),
                    ("donor", donor.into()),
                    ("requeues", requeues.into()),
                ];
                if let Some(dl) = self.workers[rank].last_download() {
                    fields.push(("retries", dl.retries.into()));
                    fields.push(("sources", dl.sources.into()));
                }
                self.telemetry.event("chunk.catchup", None, fields);
                return Ok(());
            }
            match self.pump_until(Executor::sequential(), |_, ws| {
                !ws[rank].catching_up() || ws[rank].download_failed().is_some()
            }) {
                Ok(()) => continue,
                // Quiescent with chunks outstanding: requests or replies
                // were dropped on the wire. Re-request and keep going.
                Err(ClusterError::Protocol(msg))
                    if msg == STALL_MSG && requeues < REQUEUE_LIMIT =>
                {
                    requeues += 1;
                    let mut out = Outbox::new();
                    self.workers[rank].requeue_download(&mut out);
                    self.dispatch(Addr::Worker(rank as u32), out)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends [`Message::Shutdown`] to every worker and waits until all
    /// have processed it (an orderly end of the experiment).
    pub fn shutdown(&mut self) -> Result<(), ClusterError> {
        let n = self.workers.len();
        for rank in 0..n {
            self.transport.send(
                Addr::Coordinator,
                Addr::Worker(rank as u32),
                frame::encode(&Message::Shutdown),
            )?;
        }
        self.pump_until(Executor::sequential(), |_, workers| {
            workers.iter().all(WorkerNode::is_shut_down)
        })
    }

    /// Encodes and sends every message in `out`, as `from`. Uses the
    /// fallible encoder: a body past the protocol ceiling surfaces as a
    /// typed [`saps_proto::ProtoError::Oversized`] instead of a silently
    /// wrapped length prefix.
    fn dispatch(&mut self, from: Addr, out: Outbox) -> Result<(), ClusterError> {
        for (to, msg) in out {
            self.transport.send(from, to, frame::try_encode(&msg)?)?;
        }
        Ok(())
    }

    /// Delivers queued frames to their nodes — worker inboxes fanned out
    /// across `exec` (the `saps-runtime` round engine), coordinator
    /// frames in arrival order — until `done` reports the awaited
    /// protocol state. Sweeps with no delivered frame count toward a
    /// stall limit (stream transports may have bytes in flight; the
    /// loopback transport never does).
    fn pump_until(
        &mut self,
        exec: Executor,
        done: impl Fn(&CoordinatorNode, &[WorkerNode]) -> bool,
    ) -> Result<(), ClusterError> {
        let mut idle_sweeps = 0u32;
        loop {
            if done(&self.coordinator, &self.workers) {
                return Ok(());
            }
            let mut progressed = false;

            // Worker-bound frames, decoded on this thread, handled in
            // parallel (results re-serialized in rank order so dispatch
            // order — and therefore every queue — is deterministic).
            let mut inboxes: BTreeMap<usize, Vec<(Addr, Message)>> = BTreeMap::new();
            for rank in 0..self.workers.len() {
                let at = Addr::Worker(rank as u32);
                while let Some((from, bytes)) = self.transport.recv(at)? {
                    if self.silenced(from) {
                        progressed = true;
                        continue;
                    }
                    inboxes
                        .entry(rank)
                        .or_default()
                        .push((from, decode_from(from, &bytes)?));
                }
            }
            if !inboxes.is_empty() {
                progressed = true;
                let items: Vec<(&mut WorkerNode, Vec<(Addr, Message)>)> = self
                    .workers
                    .iter_mut()
                    .enumerate()
                    .filter_map(|(r, w)| inboxes.remove(&r).map(|inbox| (w, inbox)))
                    .collect();
                let results = exec.par_map(items, |_, (node, inbox)| {
                    let mut out = Outbox::new();
                    for (from, msg) in inbox {
                        node.handle(from, msg, &mut out)?;
                    }
                    Ok::<(Addr, Outbox), ClusterError>((Addr::Worker(node.rank()), out))
                });
                for result in results {
                    let (from, out) = result?;
                    self.dispatch(from, out)?;
                }
            }

            // Coordinator-bound frames, in arrival order (the node's
            // own bookkeeping is rank-ordered, so arrival order never
            // leaks into results).
            while let Some((from, bytes)) = self.transport.recv(Addr::Coordinator)? {
                progressed = true;
                if self.silenced(from) {
                    continue;
                }
                let msg = decode_from(from, &bytes)?;
                let mut out = Outbox::new();
                self.coordinator.handle(from, msg, &mut out)?;
                self.dispatch(Addr::Coordinator, out)?;
            }

            if progressed {
                idle_sweeps = 0;
            } else {
                idle_sweeps += 1;
                if idle_sweeps > self.stall_limit {
                    return Err(ClusterError::Protocol(STALL_MSG.into()));
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    }

    /// Runs one round like [`Trainer::step`], but surfaces failures as a
    /// typed [`ClusterError`] instead of panicking — including the fatal
    /// [`ClusterError::Byzantine`] when quarantine is impossible (the
    /// fleet would drop below the control plane's minimum).
    pub fn try_step(&mut self, ctx: &mut RoundCtx<'_>) -> Result<RoundReport, ClusterError> {
        self.run_round(ctx)
    }

    /// Whether frames from `from` are dropped on receipt: a quarantined
    /// worker no longer gets a say, whatever it keeps sending.
    fn silenced(&self, from: Addr) -> bool {
        matches!(from, Addr::Worker(r) if self.quarantined.contains(&r))
    }

    /// Runs one full protocol round, replaying it with the offender
    /// expelled whenever an attempt dies on byzantine traffic. Each
    /// recovery shrinks the active fleet by one, so the loop terminates:
    /// eventually the control plane refuses the leave and the fault
    /// surfaces as fatal.
    fn run_round(&mut self, ctx: &mut RoundCtx<'_>) -> Result<RoundReport, ClusterError> {
        if ctx.telemetry.is_enabled() {
            // Keep a handle so failure paths outside a round context
            // (churn-time resync, catch-up) reach the same recorder.
            self.telemetry = ctx.telemetry.clone();
        }
        loop {
            let snaps: Vec<NodeSnapshot> = self.workers.iter().map(WorkerNode::snapshot).collect();
            match self.round_attempt(ctx) {
                Ok(report) => return Ok(report),
                Err(ClusterError::Byzantine { rank, detail }) => {
                    // Flight-recorder contract: the quarantine event
                    // names the offender, then the dump freezes it
                    // together with the trail of preceding rounds.
                    self.telemetry.add("cluster.quarantines", 1);
                    self.telemetry.event(
                        "byzantine.quarantine",
                        Some(ctx.round() as u64),
                        vec![("rank", rank.into()), ("detail", detail.clone().into())],
                    );
                    self.telemetry.crash_dump("byzantine quarantine");
                    self.recover(rank, &detail, &snaps)?;
                }
                Err(e) => {
                    if matches!(&e, ClusterError::Protocol(msg) if msg == STALL_MSG) {
                        self.telemetry.add("cluster.stalls", 1);
                        self.telemetry.event(
                            "stall",
                            Some(ctx.round() as u64),
                            vec![("round", ctx.round().into()), ("detail", STALL_MSG.into())],
                        );
                        self.telemetry.crash_dump("stall");
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Byzantine recovery: roll every worker back to the round's start,
    /// abort the coordinator's half-open round, flush the aborted
    /// attempt's in-flight frames, and expel the offender through the
    /// normal churn path — so the rebuilt peer-selection state is
    /// exactly the one a graceful leave produces, and the replay is
    /// bit-identical to a run that never matched the offender.
    fn recover(
        &mut self,
        rank: u32,
        detail: &str,
        snaps: &[NodeSnapshot],
    ) -> Result<(), ClusterError> {
        for (node, snap) in self.workers.iter_mut().zip(snaps) {
            node.restore(snap);
        }
        self.coordinator.abort_round();
        self.drain_transport()?;
        let epoch = self.coordinator.control_epoch();
        self.transport.send(
            Addr::Worker(rank),
            Addr::Coordinator,
            frame::encode(&Message::Leave { rank }),
        )?;
        match self.pump_until(Executor::sequential(), |c, _| c.control_epoch() > epoch) {
            Ok(()) => {}
            // The control plane refused the leave (fleet at the
            // minimum): recovery is impossible, the fault is fatal.
            Err(ClusterError::Config(e)) => {
                return Err(ClusterError::Byzantine {
                    rank,
                    detail: format!("{detail}; quarantine refused: {e}"),
                })
            }
            Err(e) => return Err(e),
        }
        self.quarantined.insert(rank);
        Ok(())
    }

    /// Discards everything in flight — the aborted attempt's frames must
    /// not leak into the replay, where their stale round numbers would
    /// poison worker stashes. Stream transports may still have bytes on
    /// the wire, so a few idle sweeps must pass before the drain is
    /// trusted.
    fn drain_transport(&mut self) -> Result<(), ClusterError> {
        const DRAIN_IDLE_SWEEPS: u32 = 25;
        let mut idle = 0u32;
        while idle < DRAIN_IDLE_SWEEPS {
            let mut got = false;
            for rank in 0..self.workers.len() {
                while self.transport.recv(Addr::Worker(rank as u32))?.is_some() {
                    got = true;
                }
            }
            while self.transport.recv(Addr::Coordinator)?.is_some() {
                got = true;
            }
            if got {
                idle = 0;
            } else {
                idle += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        Ok(())
    }

    /// One attempt at a protocol round, reconciling the wire
    /// observations into the round context's accounting.
    fn round_attempt(&mut self, ctx: &mut RoundCtx<'_>) -> Result<RoundReport, ClusterError> {
        let mut out = Outbox::new();
        let meta: RoundMeta = self.coordinator.start_round(&mut out)?;
        // Discard transfers logged outside rounds (there are none — only
        // MaskedPayload frames are logged — but stay safe).
        self.tap.take_transfers();
        self.dispatch(Addr::Coordinator, out)?;
        self.pump_until(ctx.exec, |c, _| c.round_complete())?;
        let stats = self.coordinator.finish_round()?;
        let after = self.tap.snapshot();

        // Bill exactly what was framed. Worker rows get each payload's
        // values section (4·nnz — Table I's worker cost and bit-equal to
        // the in-memory accounting); the server row gets every other
        // byte this round put on the wire (control frames + envelopes).
        let by_dir: BTreeMap<(u32, u32), (u64, u64)> = self
            .tap
            .take_transfers()
            .into_iter()
            .map(|(s, d, frame_bytes, value_bytes)| ((s, d), (frame_bytes, value_bytes)))
            .collect();
        let mut priced = Vec::with_capacity(2 * meta.pairs.len());
        for &(ri, rj) in &meta.pairs {
            for (s, d) in [(ri, rj), (rj, ri)] {
                let &(frame_bytes, value_bytes) =
                    by_dir.get(&(s as u32, d as u32)).ok_or_else(|| {
                        ClusterError::Protocol(format!(
                            "no payload framed for matched direction {s} → {d}"
                        ))
                    })?;
                ctx.traffic.record_p2p(s, d, value_bytes);
                // Time is priced on the full frame: what the DES
                // simulates is what the wire carried.
                priced.push((s, d, frame_bytes));
            }
        }
        ctx.traffic
            .record_control(after.control_bytes - self.billed_control);
        self.billed_control = after.control_bytes;
        ctx.traffic.end_round();

        let timing = ctx.price_p2p(&priced);
        if ctx.telemetry.is_enabled() {
            // Unify the WireTap's per-plane byte counters into the
            // registry (cumulative across the tap's lifetime, same
            // invariant: total = data + control + model + serve).
            let tel = &ctx.telemetry;
            tel.add("cluster.rounds", 1);
            tel.set_gauge("wire.data_bytes", after.data_bytes as f64);
            tel.set_gauge("wire.control_bytes", after.control_bytes as f64);
            tel.set_gauge("wire.model_bytes", after.model_bytes as f64);
            tel.set_gauge("wire.serve_bytes", after.serve_bytes as f64);
            tel.set_gauge("wire.total_bytes", after.total_bytes as f64);
            tel.set_gauge("wire.frames", after.frames as f64);
            tel.event(
                "cluster.round",
                Some(ctx.round() as u64),
                vec![
                    ("pairs", meta.pairs.len().into()),
                    ("active", meta.ranks.len().into()),
                ],
            );
        }
        let mean_part = meta
            .ranks
            .iter()
            .map(|&r| self.workers[r].data_len())
            .sum::<usize>() as f64
            / meta.ranks.len().max(1) as f64;
        Ok(saps_round_report(
            &stats,
            &meta.pairs,
            ctx.bw,
            &timing,
            self.batch_size,
            mean_part,
        ))
    }
}

impl<T: Transport> Trainer for ClusterTrainer<T> {
    fn name(&self) -> &'static str {
        // The algorithm is SAPS-PSGD either way; in-memory and cluster
        // runs of the same spec produce directly comparable histories
        // (benchmark records key on the driver separately).
        "SAPS-PSGD"
    }

    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> RoundReport {
        self.run_round(ctx)
            .unwrap_or_else(|e| panic!("cluster round failed: {e}"))
    }

    fn evaluate(&mut self, val: &Dataset, max_samples: usize) -> f32 {
        let avg = self
            .consensus_model()
            .unwrap_or_else(|e| panic!("model collection failed: {e}"));
        self.eval_model.set_flat_params(&avg);
        self.eval_model.evaluate(val, max_samples)
    }

    fn model_len(&self) -> usize {
        self.n_params
    }

    fn worker_count(&self) -> usize {
        self.workers.len()
    }

    fn set_worker_active(&mut self, rank: usize, active: bool) -> Result<(), ConfigError> {
        if rank >= self.workers.len() {
            return Err(ConfigError::invalid(
                "ClusterTrainer",
                format!("worker rank {rank} out of range ({})", self.workers.len()),
            ));
        }
        let msg = if active {
            Message::Join { rank: rank as u32 }
        } else {
            Message::Leave { rank: rank as u32 }
        };
        let epoch = self.coordinator.control_epoch();
        self.transport
            .send(
                Addr::Worker(rank as u32),
                Addr::Coordinator,
                frame::encode(&msg),
            )
            .map_err(into_config)?;
        self.pump_until(Executor::sequential(), |c, _| c.control_epoch() > epoch)
            .map_err(into_config)
    }

    fn export_checkpoint(&mut self) -> Result<Vec<u8>, ConfigError> {
        // The consensus crosses the wire as real FetchModel/FinalModel
        // frames, then is re-encoded with the coordinator's round stamp.
        let params = self.consensus_model().map_err(into_config)?;
        Ok(checkpoint::encode(&params, self.coordinator.rounds_done()).to_vec())
    }

    fn refresh_bandwidth(&mut self, bw: &BandwidthMatrix) {
        assert_eq!(bw.len(), self.workers.len());
        let msg = Message::BandwidthReport {
            n: bw.len() as u32,
            mbps: bw.as_slice().to_vec(),
        };
        let epoch = self.coordinator.control_epoch();
        // The report originates at the coordinator's own measurement
        // service; it still crosses the wire as a real frame.
        self.transport
            .send(Addr::Coordinator, Addr::Coordinator, frame::encode(&msg))
            .unwrap_or_else(|e| panic!("bandwidth report failed: {e}"));
        self.pump_until(Executor::sequential(), |c, _| c.control_epoch() > epoch)
            .unwrap_or_else(|e| panic!("bandwidth refresh failed: {e}"));
    }
}

/// Decodes a frame, attributing an undecodable frame from a worker to
/// that worker as byzantine traffic. The coordinator is part of the
/// driver and trusted, so its decode failures stay plain wire errors.
fn decode_from(from: Addr, bytes: &[u8]) -> Result<Message, ClusterError> {
    frame::decode(bytes).map_err(|e| match from {
        Addr::Worker(rank) => ClusterError::Byzantine {
            rank,
            detail: format!("undecodable frame: {e}"),
        },
        // The coordinator is trusted driver state, and serving-plane
        // addresses never reach the training pump.
        Addr::Coordinator | Addr::Replica(_) | Addr::Client(_) => ClusterError::Proto(e),
    })
}

/// Maps a cluster error back to the [`ConfigError`] the in-memory
/// trainer would have surfaced (churn below the minimum fleet, etc.).
fn into_config(e: ClusterError) -> ConfigError {
    match e {
        ClusterError::Config(c) => c,
        other => ConfigError::invalid("ClusterTrainer", other.to_string()),
    }
}

/// An [`AlgorithmRegistry`] covering every key the in-memory
/// [`saps_baselines::registry`] covers, each built as a cluster driver
/// over the loopback transport metering through `tap`: `"saps"` as a
/// [`ClusterTrainer`], the seven baselines as
/// [`crate::BaselineClusterTrainer`]s. Hand it to
/// [`saps_core::Experiment::run`] to execute a whole experiment through
/// the wire protocol.
pub fn cluster_registry(tap: WireTap) -> AlgorithmRegistry {
    let mut reg = AlgorithmRegistry::empty();
    crate::baseline::register_cluster_baselines(&mut reg, &tap);
    reg.register(
        "saps",
        move |spec: &AlgorithmSpec, ctx: saps_core::BuildCtx<'_>| {
            let AlgorithmSpec::Saps {
                compression,
                tthres,
                bthres,
            } = *spec
            else {
                return Err(ConfigError::UnknownAlgorithm(spec.key().to_string()));
            };
            let cfg = SapsConfig {
                workers: ctx.partitions.len(),
                compression,
                lr: ctx.lr,
                batch_size: ctx.batch_size,
                bthres,
                tthres,
                seed: ctx.seed,
                shard_size: None,
            };
            let factory = ctx.factory.clone();
            let trainer = ClusterTrainer::loopback(
                cfg,
                ctx.partitions,
                ctx.bw,
                move |rng| factory(rng),
                tap.clone(),
            )?;
            Ok(Box::new(trainer) as Box<dyn Trainer>)
        },
    );
    reg
}
