//! The SAPS-PSGD cluster runtime: Algorithms 1–2 as message-driven
//! coordinator/worker nodes over a pluggable transport.
//!
//! The in-memory [`saps_core::SapsPsgd`] trainer runs the paper's
//! protocol as shared-memory method calls; this crate runs the *same
//! protocol logic* (the same [`saps_core::SapsControl`] planning state,
//! the same [`saps_core::Worker`] arithmetic) through real serialized
//! [`saps_proto`] frames:
//!
//! * [`CoordinatorNode`] / [`WorkerNode`] — the two sides of the
//!   protocol as event-loop state machines (`handle(from, message) →
//!   outgoing messages`), transport-agnostic and individually testable;
//! * [`Transport`] — the pluggable byte mover, with the deterministic
//!   in-process [`LoopbackTransport`] as the default and a localhost
//!   `tcp::TcpTransport` behind the `tcp` feature;
//! * [`FaultyTransport`] — a seeded fault-injection decorator over any
//!   transport (drop / corrupt / delay / reorder per frame, scoped down
//!   to one sender's payloads) — the adversary used by the workspace
//!   fault-injection tests;
//! * [`ClusterTrainer`] — a [`saps_core::Trainer`] that pumps the nodes
//!   through a transport, so the standard [`saps_core::Experiment`]
//!   driver (events, observers, evaluation cadence) runs a cluster
//!   experiment end to end; worker message handling fans out across the
//!   `saps-runtime` round engine;
//! * [`WireTap`] / [`WireStats`] — per-class on-wire byte metering, the
//!   ground truth the driver bills rounds from;
//! * [`ChunkManifest`] / [`DownloadScheduler`] — the chunked
//!   model-distribution plane: checkpoints are published as an
//!   epoch-stamped manifest of fixed-size checksummed chunks, and
//!   joiners catch up by fanning chunk requests across multiple peers
//!   (ranked from the bandwidth snapshot) instead of pulling one
//!   monolithic `FinalModel` frame from a single donor;
//! * [`BaselineClusterTrainer`] — the seven comparison algorithms
//!   (PSGD, D-PSGD, DCD-PSGD, TopK-PSGD, FedAvg, S-FedAvg,
//!   RandomChoose) as framed message exchanges over the same
//!   transports, so [`cluster_registry`] covers every algorithm key the
//!   in-memory registry does.
//!
//! **The headline invariant** (pinned by `tests/cluster_conformance.rs`
//! at the workspace root): a cluster-driven run is bit-identical in
//! training state and per-round loss to the in-memory run of the same
//! spec, and the bytes framed on the wire reconcile exactly with the
//! `TrafficAccountant` — each masked payload's values section (`4·nnz`)
//! on the worker rows, every other byte on the server row. Round timing
//! is priced from the full framed sizes, closing the loop between the
//! `saps-netsim` time models and the wire. `docs/PROTOCOL.md` documents
//! the frame layout and the per-message cost table.
//!
//! # Example
//!
//! ```
//! use saps_cluster::{cluster_registry, WireTap};
//! use saps_core::{AlgorithmSpec, Experiment};
//! use saps_data::SyntheticSpec;
//! use saps_nn::zoo;
//!
//! let ds = SyntheticSpec::tiny().samples(600).generate(1);
//! let (train, val) = ds.split(0.25, 0);
//! let tap = WireTap::new();
//! let hist = Experiment::new(AlgorithmSpec::parse("saps").unwrap().with_compression(4.0))
//!     .train(train)
//!     .validation(val)
//!     .workers(4)
//!     .batch_size(16)
//!     .model(|rng| zoo::mlp(&[16, 16, 4], rng))
//!     .rounds(5)
//!     .eval_every(5)
//!     .eval_samples(100)
//!     .run(&cluster_registry(tap.clone()))
//!     .unwrap();
//! assert_eq!(hist.points.len(), 5);
//! let wire = tap.snapshot();
//! assert!(wire.data_bytes > 0 && wire.control_bytes > 0);
//! ```

#![deny(missing_docs)]

mod baseline;
mod chunks;
mod error;
mod faults;
mod node;
#[cfg(feature = "tcp")]
pub mod tcp;
mod trainer;
mod transport;

pub use baseline::{
    register_cluster_baselines, BaselineClusterTrainer, BaselineKind, ResyncMode, ResyncReport,
};
pub use chunks::{ChunkManifest, ChunkOutcome, DownloadScheduler, DEFAULT_CHUNK_BYTES};
pub use error::ClusterError;
pub use faults::{FaultPlan, FaultScope, FaultyTransport, PlanHandle};
pub use node::{CoordinatorNode, DownloadReport, NodeSnapshot, Outbox, RoundMeta, WorkerNode};
pub use trainer::{cluster_registry, ClusterTrainer};
pub use transport::{Addr, LoopbackTransport, Transport, WireStats, WireTap, WireTransfer};
