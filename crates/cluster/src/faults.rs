//! Seeded fault injection over any [`Transport`].
//!
//! [`FaultyTransport`] wraps a real transport and damages traffic
//! according to a [`FaultPlan`]: per frame it may **drop** (the frame
//! never reaches the wire), **corrupt** (one bit flipped in the
//! checksum trailer, so decoding is guaranteed to fail while the header
//! — and therefore stream resync — stays intact), **delay** (held back
//! for 1–3 receive polls at its destination) or **reorder** (held one
//! slot, so it arrives behind the next frame to the same destination).
//! Faults are mutually exclusive per frame and drawn from one seeded
//! RNG, so a fault schedule is a pure function of `(seed, traffic)` —
//! every failing test replays exactly.
//!
//! The plan lives behind a shared [`PlanHandle`], so a test can run
//! clean rounds and flip the plan mid-experiment (e.g. turn a worker
//! byzantine at round 3) without rebuilding the trainer.
//!
//! Metering: dropped frames are discarded *before* the inner transport
//! sees them, so the [`crate::WireTap`] never counts bytes that never
//! hit the wire; delayed and reordered frames are metered when they are
//! actually forwarded.

use crate::transport::{Addr, Transport};
use crate::ClusterError;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saps_proto::{frame, Message, TrafficClass};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Which frames a [`FaultPlan`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultScope {
    /// Every frame is eligible.
    All,
    /// Only frames sent by this address.
    From(Addr),
    /// Only data-plane ([`Message::MaskedPayload`]) frames sent by this
    /// address — the shape of a byzantine worker that speaks the control
    /// protocol correctly but poisons its model exchanges.
    PayloadsFrom(Addr),
}

/// Per-frame fault probabilities. Each eligible frame suffers at most
/// one fault, drawn in the order drop → corrupt → delay → reorder; the
/// probabilities must therefore each lie in `[0, 1]` and sum to at most
/// 1 (checked at construction and on every [`PlanHandle::set`]).
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Probability the frame is silently discarded.
    pub drop: f64,
    /// Probability one bit of the frame's checksum trailer is flipped.
    pub corrupt: f64,
    /// Probability the frame is withheld for 1–3 receive polls.
    pub delay: f64,
    /// Probability the frame arrives behind the next frame to the same
    /// destination.
    pub reorder: f64,
    /// Which frames are eligible.
    pub scope: FaultScope,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan injecting no faults at all.
    pub fn none() -> Self {
        FaultPlan {
            drop: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            reorder: 0.0,
            scope: FaultScope::All,
        }
    }

    /// Sets the drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Sets the corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    /// Sets the delay probability.
    pub fn with_delay(mut self, p: f64) -> Self {
        self.delay = p;
        self
    }

    /// Sets the reorder probability.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    /// Restricts the plan to `scope`.
    pub fn scoped(mut self, scope: FaultScope) -> Self {
        self.scope = scope;
        self
    }

    fn validate(&self) {
        let ps = [self.drop, self.corrupt, self.delay, self.reorder];
        assert!(
            ps.iter().all(|p| (0.0..=1.0).contains(p)),
            "fault probabilities must lie in [0, 1]: {self:?}"
        );
        assert!(
            ps.iter().sum::<f64>() <= 1.0,
            "fault probabilities must sum to at most 1: {self:?}"
        );
    }

    /// Whether a frame from `from` falls under this plan's scope.
    fn eligible(&self, from: Addr, raw: &[u8]) -> bool {
        match self.scope {
            FaultScope::All => true,
            FaultScope::From(a) => from == a,
            FaultScope::PayloadsFrom(a) => {
                from == a
                    && matches!(
                        frame::peek(raw),
                        Ok(Some(info))
                            if Message::traffic_class_of(info.tag)
                                == Some(TrafficClass::DataPlane)
                    )
            }
        }
    }
}

/// A shared, swappable handle on a [`FaultyTransport`]'s plan: clone it
/// out of the transport before handing the transport to a trainer, then
/// flip the plan mid-run.
#[derive(Debug, Clone, Default)]
pub struct PlanHandle(Arc<Mutex<FaultPlan>>);

impl PlanHandle {
    /// The current plan.
    pub fn get(&self) -> FaultPlan {
        *self.0.lock().expect("fault plan lock")
    }

    /// Replaces the plan (validated), effective from the next send.
    pub fn set(&self, plan: FaultPlan) {
        plan.validate();
        *self.0.lock().expect("fault plan lock") = plan;
    }
}

/// The fault a single frame drew.
enum Fault {
    None,
    Drop,
    Corrupt,
    Delay(u32),
    Reorder,
}

/// A [`Transport`] decorator that injects seeded faults — see the
/// module docs for the fault menu and determinism contract.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: PlanHandle,
    rng: StdRng,
    /// Delayed frames per destination, each with a countdown of receive
    /// polls left before it is forwarded (in original order).
    delayed: BTreeMap<Addr, Vec<(u32, Addr, Bytes)>>,
    /// At most one reordered frame held back per destination; released
    /// behind the next frame sent there, or when the destination would
    /// otherwise read empty.
    held: BTreeMap<Addr, (Addr, Bytes)>,
}

impl<T: Transport> std::fmt::Debug for FaultyTransport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyTransport")
            .field("plan", &self.plan.get())
            .finish()
    }
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner`, drawing faults per `plan` from a RNG seeded with
    /// `seed`.
    pub fn new(inner: T, plan: FaultPlan, seed: u64) -> Self {
        plan.validate();
        FaultyTransport {
            inner,
            plan: PlanHandle(Arc::new(Mutex::new(plan))),
            rng: StdRng::seed_from_u64(seed),
            delayed: BTreeMap::new(),
            held: BTreeMap::new(),
        }
    }

    /// A handle for swapping the plan mid-run.
    pub fn plan_handle(&self) -> PlanHandle {
        self.plan.clone()
    }

    fn draw(&mut self, plan: &FaultPlan) -> Fault {
        let u: f64 = self.rng.gen();
        let mut edge = plan.drop;
        if u < edge {
            return Fault::Drop;
        }
        edge += plan.corrupt;
        if u < edge {
            return Fault::Corrupt;
        }
        edge += plan.delay;
        if u < edge {
            return Fault::Delay(self.rng.gen_range(1..=3));
        }
        edge += plan.reorder;
        if u < edge {
            return Fault::Reorder;
        }
        Fault::None
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, from: Addr, to: Addr, frame: Bytes) -> Result<(), ClusterError> {
        let plan = self.plan.get();
        let fault = if plan.eligible(from, &frame) {
            self.draw(&plan)
        } else {
            Fault::None
        };
        match fault {
            Fault::Drop => return Ok(()),
            Fault::Delay(polls) => {
                self.delayed
                    .entry(to)
                    .or_default()
                    .push((polls, from, frame));
                return Ok(());
            }
            Fault::Reorder if !self.held.contains_key(&to) => {
                self.held.insert(to, (from, frame));
                return Ok(());
            }
            Fault::Corrupt => {
                // Flip one bit of the checksum trailer: the header (and
                // with it the decoder's framing and resync) stays
                // intact, while decoding is guaranteed to fail.
                let mut raw = frame.to_vec();
                let last = raw.len() - 1;
                raw[last] ^= 0x01;
                self.inner.send(from, to, Bytes::from(raw))?;
            }
            Fault::None | Fault::Reorder => self.inner.send(from, to, frame)?,
        }
        // A frame went through: any held frame follows it — the swap
        // that makes a one-slot reorder.
        if let Some((hfrom, hframe)) = self.held.remove(&to) {
            self.inner.send(hfrom, to, hframe)?;
        }
        Ok(())
    }

    fn recv(&mut self, at: Addr) -> Result<Option<(Addr, Bytes)>, ClusterError> {
        // Age this destination's delayed frames; forward the ripe ones
        // in their original order.
        if let Some(q) = self.delayed.get_mut(&at) {
            let mut ripe = Vec::new();
            q.retain_mut(|(polls, from, frame)| {
                *polls -= 1;
                if *polls == 0 {
                    ripe.push((*from, frame.clone()));
                    false
                } else {
                    true
                }
            });
            if q.is_empty() {
                self.delayed.remove(&at);
            }
            for (from, f) in ripe {
                self.inner.send(from, at, f)?;
            }
        }
        if let Some(got) = self.inner.recv(at)? {
            return Ok(Some(got));
        }
        // Nothing else is coming: release a reorder hold rather than
        // starve the destination.
        if let Some((from, f)) = self.held.remove(&at) {
            self.inner.send(from, at, f)?;
            return self.inner.recv(at);
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{LoopbackTransport, WireTap};

    fn loopback() -> LoopbackTransport {
        LoopbackTransport::new(WireTap::new())
    }

    fn payload() -> Bytes {
        frame::encode(&Message::MaskedPayload {
            round: 3,
            values: vec![1.0, 2.0, 3.0],
        })
    }

    fn control() -> Bytes {
        frame::encode(&Message::Join { rank: 1 })
    }

    #[test]
    fn no_faults_is_a_transparent_wrapper() {
        let mut t = FaultyTransport::new(loopback(), FaultPlan::none(), 1);
        let f = payload();
        t.send(Addr::Worker(0), Addr::Worker(1), f.clone()).unwrap();
        let (from, got) = t.recv(Addr::Worker(1)).unwrap().unwrap();
        assert_eq!((from, got), (Addr::Worker(0), f));
        assert!(t.recv(Addr::Worker(1)).unwrap().is_none());
    }

    #[test]
    fn certain_drop_loses_the_frame_before_the_tap() {
        let tap = WireTap::new();
        let inner = LoopbackTransport::new(tap.clone());
        let mut t = FaultyTransport::new(inner, FaultPlan::none().with_drop(1.0), 1);
        t.send(Addr::Worker(0), Addr::Worker(1), payload()).unwrap();
        assert!(t.recv(Addr::Worker(1)).unwrap().is_none());
        assert_eq!(
            tap.snapshot().frames,
            0,
            "dropped frames never hit the wire"
        );
    }

    #[test]
    fn certain_corruption_defeats_decoding_but_not_framing() {
        let mut t = FaultyTransport::new(loopback(), FaultPlan::none().with_corrupt(1.0), 1);
        t.send(Addr::Worker(0), Addr::Worker(1), payload()).unwrap();
        let (_, raw) = t.recv(Addr::Worker(1)).unwrap().unwrap();
        assert!(
            frame::decode(&raw).is_err(),
            "corrupt frame must not decode"
        );
        let info = frame::peek(&raw).unwrap().unwrap();
        assert_eq!(info.frame_len, raw.len(), "header stays parseable");
    }

    #[test]
    fn delayed_frames_arrive_within_three_polls() {
        let mut t = FaultyTransport::new(loopback(), FaultPlan::none().with_delay(1.0), 7);
        let f = payload();
        t.send(Addr::Worker(0), Addr::Worker(1), f.clone()).unwrap();
        let mut polls = 0;
        let got = loop {
            polls += 1;
            assert!(polls <= 3, "delay must release within three polls");
            if let Some(got) = t.recv(Addr::Worker(1)).unwrap() {
                break got;
            }
        };
        assert_eq!(got, (Addr::Worker(0), f));
    }

    #[test]
    fn reorder_swaps_two_frames_and_flushes_a_lone_hold() {
        let mut t = FaultyTransport::new(loopback(), FaultPlan::none().with_reorder(1.0), 5);
        let (f1, f2) = (payload(), control());
        t.send(Addr::Worker(1), Addr::Worker(0), f1.clone())
            .unwrap();
        t.send(Addr::Worker(2), Addr::Worker(0), f2.clone())
            .unwrap();
        // The second frame overtakes the held first one.
        assert_eq!(t.recv(Addr::Worker(0)).unwrap().unwrap().1, f2);
        assert_eq!(t.recv(Addr::Worker(0)).unwrap().unwrap().1, f1);
        // A hold with no successor is released rather than starved.
        t.send(Addr::Worker(1), Addr::Worker(0), f1.clone())
            .unwrap();
        assert_eq!(t.recv(Addr::Worker(0)).unwrap().unwrap().1, f1);
    }

    #[test]
    fn payload_scope_spares_control_traffic_and_other_senders() {
        let plan = FaultPlan::none()
            .with_drop(1.0)
            .scoped(FaultScope::PayloadsFrom(Addr::Worker(3)));
        let mut t = FaultyTransport::new(loopback(), plan, 2);
        // The scoped worker's payloads vanish…
        t.send(Addr::Worker(3), Addr::Worker(1), payload()).unwrap();
        assert!(t.recv(Addr::Worker(1)).unwrap().is_none());
        // …its control frames and everyone else's payloads survive.
        t.send(Addr::Worker(3), Addr::Coordinator, control())
            .unwrap();
        assert!(t.recv(Addr::Coordinator).unwrap().is_some());
        t.send(Addr::Worker(2), Addr::Worker(1), payload()).unwrap();
        assert!(t.recv(Addr::Worker(1)).unwrap().is_some());
    }

    #[test]
    fn plan_handle_flips_faults_mid_stream() {
        let mut t = FaultyTransport::new(loopback(), FaultPlan::none(), 9);
        let handle = t.plan_handle();
        t.send(Addr::Worker(0), Addr::Worker(1), payload()).unwrap();
        assert!(t.recv(Addr::Worker(1)).unwrap().is_some());
        handle.set(FaultPlan::none().with_drop(1.0));
        t.send(Addr::Worker(0), Addr::Worker(1), payload()).unwrap();
        assert!(t.recv(Addr::Worker(1)).unwrap().is_none());
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn oversubscribed_plan_is_rejected() {
        FaultyTransport::new(
            loopback(),
            FaultPlan::none().with_drop(0.8).with_corrupt(0.3),
            1,
        );
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let plan = FaultPlan::none().with_drop(0.3).with_corrupt(0.3);
        let outcomes = |seed: u64| {
            let mut t = FaultyTransport::new(loopback(), plan, seed);
            (0..32)
                .map(|_| {
                    t.send(Addr::Worker(0), Addr::Worker(1), payload()).unwrap();
                    match t.recv(Addr::Worker(1)).unwrap() {
                        None => 0u8,
                        Some((_, raw)) if frame::decode(&raw).is_err() => 1,
                        Some(_) => 2,
                    }
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(outcomes(42), outcomes(42));
        assert_ne!(outcomes(42), outcomes(43), "different seeds should differ");
    }
}
