//! The seven baseline algorithms on the wire.
//!
//! [`saps_baselines`] runs the paper's comparison algorithms as
//! shared-memory method calls; this module runs the *same arithmetic*
//! through real serialized [`saps_proto`] frames over a [`Transport`],
//! metered by the [`WireTap`] and priced by the DES from the bytes
//! actually framed:
//!
//! | Algorithm | Wire pattern | Payload frame |
//! |-----------|--------------|---------------|
//! | PSGD | hop-by-hop ring reduce-scatter + allgather | [`Message::DensePayload`] chunks |
//! | D-PSGD | dense model to both ring neighbours | [`Message::DensePayload`] |
//! | DCD-PSGD | sparse diff to both ring neighbours | [`Message::SparsePayload`] |
//! | TopK-PSGD | sparse gradient allgather to every peer | [`Message::SparsePayload`] |
//! | FedAvg | parameter server pinned at `best_server` | [`Message::DensePayload`] up + down |
//! | S-FedAvg | PS, dense down / masked sparse up | [`Message::SparsePayload`] up |
//! | RandomChoose | matched-pair shared-mask exchange | [`Message::MaskedPayload`] |
//!
//! Every round each worker also reports its local loss/accuracy sums as
//! a [`Message::ClientStats`] control frame; the driver folds the
//! *decoded* `f64` sums in ascending rank order, so the reported means
//! carry the exact bits of the in-memory reduction.
//!
//! **The conformance invariant** (pinned by the workspace
//! `tests/cluster_conformance.rs` matrix): a wire-driven baseline run is
//! bit-identical to the in-memory run of the same spec — every round's
//! loss/accuracy, every worker's parameters, every worker's traffic
//! rows. Payload values make a byte round-trip (`f32` → little-endian
//! frame → `f32`) which is exact, the application order is the
//! in-memory order, and the per-worker `TrafficAccountant` charges are
//! the same value-byte sums. What differs is the *server/control row*
//! (real envelopes are billed like the SAPS driver bills them: every
//! byte that is not payload values goes to the control plane) and the
//! DES round time, which here prices full framed sizes.

use crate::chunks::{ChunkManifest, ChunkOutcome, DownloadScheduler, DEFAULT_CHUNK_BYTES};
use crate::error::ClusterError;
use crate::transport::{Addr, LoopbackTransport, Transport, WireTap};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use saps_baselines::allreduce::{
    allgather_chunk, chunk_range, reduce_scatter_chunk, ring_send_bytes,
};
use saps_baselines::{select_ranked_mut, Fleet};
use saps_compress::codec;
use saps_compress::mask::RandomMask;
use saps_compress::topk::{densify, top_k_indices, ErrorFeedbackTopK};
use saps_core::{
    checkpoint, AlgorithmRegistry, AlgorithmSpec, BuildCtx, ConfigError, Recorder, RoundCtx,
    RoundReport, Trainer,
};
use saps_data::Dataset;
use saps_graph::topology;
use saps_graph::topology::random_perfect_matching;
use saps_netsim::{BandwidthMatrix, TrafficAccountant};
use saps_nn::Model;
use saps_proto::{frame, Message};
use saps_tensor::rng::{derive_seed, streams};
use std::collections::BTreeMap;
use std::time::Duration;

/// Idle receive sweeps tolerated before a stall error (1 ms each).
const STALL_SWEEP_LIMIT: u32 = 5_000;

/// Which baseline a [`BaselineClusterTrainer`] drives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BaselineKind {
    /// Dense ring all-reduce PSGD.
    Psgd,
    /// Decentralized ring PSGD (dense neighbour exchange).
    DPsgd,
    /// Difference-compressed decentralized PSGD.
    DcdPsgd {
        /// Compression ratio `c` (top-`N/c` coordinates per diff).
        compression: f64,
    },
    /// All-reduce PSGD with top-k sparsified gradients.
    TopK {
        /// Compression ratio `c`.
        compression: f64,
    },
    /// Parameter-server FedAvg.
    FedAvg {
        /// Fraction of active workers sampled per round.
        participation: f64,
        /// Local SGD steps per selected client.
        local_steps: usize,
    },
    /// FedAvg with random-mask sparsified uploads.
    SFedAvg {
        /// Fraction of active workers sampled per round.
        participation: f64,
        /// Local SGD steps per selected client.
        local_steps: usize,
        /// Upload compression ratio `c`.
        compression: f64,
    },
    /// SAPS's exchange with uniformly random peer matching.
    RandomChoose {
        /// Compression ratio `c`.
        compression: f64,
    },
}

/// Per-algorithm driver state (mirrors the in-memory trainers' fields).
enum AlgoState {
    Psgd,
    DPsgd,
    Dcd {
        compression: f64,
        /// Each worker's last broadcast model, replicated at its
        /// neighbours by the sparse diffs on the wire.
        broadcast: Vec<Vec<f32>>,
    },
    TopK {
        compression: f64,
        compressors: Vec<ErrorFeedbackTopK>,
    },
    FedAvg {
        participation: f64,
        local_steps: usize,
        server_model: Vec<f32>,
        server: Option<usize>,
        rng: StdRng,
    },
    SFedAvg {
        participation: f64,
        local_steps: usize,
        compression: f64,
        server_model: Vec<f32>,
        server: Option<usize>,
        rng: StdRng,
        mask: RandomMask,
    },
    Random {
        compression: f64,
        rng: StdRng,
        mask: RandomMask,
    },
}

/// Discriminant used to dispatch without holding a borrow on the state.
#[derive(Clone, Copy)]
enum Kind {
    Psgd,
    DPsgd,
    Dcd,
    TopK,
    FedAvg,
    SFedAvg,
    Random,
}

impl AlgoState {
    fn kind(&self) -> Kind {
        match self {
            AlgoState::Psgd => Kind::Psgd,
            AlgoState::DPsgd => Kind::DPsgd,
            AlgoState::Dcd { .. } => Kind::Dcd,
            AlgoState::TopK { .. } => Kind::TopK,
            AlgoState::FedAvg { .. } => Kind::FedAvg,
            AlgoState::SFedAvg { .. } => Kind::SFedAvg,
            AlgoState::Random { .. } => Kind::Random,
        }
    }
}

/// The transport plus receive plumbing, split out so step methods can
/// borrow it alongside the fleet and the algorithm state.
struct Wire<T: Transport> {
    transport: T,
    stall_limit: u32,
}

impl<T: Transport> Wire<T> {
    /// Encodes `msg`, records it on the tap (inside the transport), and
    /// returns the framed byte count for DES pricing.
    fn send(&mut self, from: Addr, to: Addr, msg: &Message) -> Result<u64, ClusterError> {
        let bytes = frame::encode(msg);
        let framed = bytes.len() as u64;
        self.transport.send(from, to, bytes)?;
        Ok(framed)
    }

    /// Receives and decodes one frame at `at`, stalling out (typed
    /// error, never a hang) after `stall_limit` idle 1 ms sweeps.
    fn recv(&mut self, at: Addr) -> Result<(Addr, Message), ClusterError> {
        let mut idle = 0u32;
        loop {
            if let Some((from, bytes)) = self.transport.recv(at)? {
                let msg = frame::decode(&bytes)?;
                return Ok((from, msg));
            }
            idle += 1;
            if idle > self.stall_limit {
                return Err(ClusterError::Protocol(format!(
                    "transport quiescent waiting for a frame at {at}"
                )));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Ships each worker's `(loss, acc)` sums to the coordinator as
    /// [`Message::ClientStats`] control frames and folds the decoded
    /// values in ascending rank order. Returns the raw `f64` sums.
    fn exchange_stats(
        &mut self,
        round: u64,
        per_worker: &[(usize, (f64, f64))],
    ) -> Result<(f64, f64), ClusterError> {
        for &(rank, (loss, acc)) in per_worker {
            let msg = Message::ClientStats {
                round,
                rank: rank as u32,
                loss,
                acc,
            };
            self.send(Addr::Worker(rank as u32), Addr::Coordinator, &msg)?;
        }
        let mut decoded = BTreeMap::new();
        for _ in per_worker {
            let (from, msg) = self.recv(Addr::Coordinator)?;
            let Message::ClientStats {
                round: r,
                rank,
                loss,
                acc,
            } = msg
            else {
                return Err(unexpected("ClientStats", &msg, from));
            };
            if r != round {
                return Err(ClusterError::Protocol(format!(
                    "stats frame for round {r} during round {round}"
                )));
            }
            decoded.insert(rank, (loss, acc));
        }
        if decoded.len() != per_worker.len() {
            return Err(ClusterError::Protocol(
                "duplicate stats frames in one round".into(),
            ));
        }
        Ok(decoded
            .values()
            .fold((0.0, 0.0), |(l, a), &(li, ai)| (l + li, a + ai)))
    }
}

fn unexpected(wanted: &str, got: &Message, from: Addr) -> ClusterError {
    ClusterError::Protocol(format!(
        "expected {wanted} from {from}, got {}",
        got.label()
    ))
}

fn worker_rank(addr: Addr) -> Result<usize, ClusterError> {
    match addr {
        Addr::Worker(r) => Ok(r as usize),
        other => Err(ClusterError::Protocol(format!(
            "payload frame from non-worker address {other}"
        ))),
    }
}

fn dense_values(msg: Message, round: u64, from: Addr) -> Result<Vec<f32>, ClusterError> {
    match msg {
        Message::DensePayload { round: r, values } if r == round => Ok(values),
        Message::DensePayload { round: r, .. } => Err(ClusterError::Protocol(format!(
            "dense payload for round {r} during round {round}"
        ))),
        other => Err(unexpected("DensePayload", &other, from)),
    }
}

fn sparse_values(
    msg: Message,
    round: u64,
    from: Addr,
) -> Result<(Vec<u32>, Vec<f32>), ClusterError> {
    match msg {
        Message::SparsePayload {
            round: r,
            indices,
            values,
        } if r == round => Ok((indices, values)),
        Message::SparsePayload { round: r, .. } => Err(ClusterError::Protocol(format!(
            "sparse payload for round {r} during round {round}"
        ))),
        other => Err(unexpected("SparsePayload", &other, from)),
    }
}

fn masked_values(msg: Message, round: u64, from: Addr) -> Result<Vec<f32>, ClusterError> {
    match msg {
        Message::MaskedPayload { round: r, values } if r == round => Ok(values),
        Message::MaskedPayload { round: r, .. } => Err(ClusterError::Protocol(format!(
            "masked payload for round {r} during round {round}"
        ))),
        other => Err(unexpected("MaskedPayload", &other, from)),
    }
}

/// Bills every not-yet-billed control-plane byte (control frames plus
/// all payload envelopes) to the server row, like the SAPS driver.
fn bill_control(tap: &WireTap, billed: &mut u64, traffic: &mut TrafficAccountant) {
    let after = tap.snapshot().control_bytes;
    traffic.record_control(after.saturating_sub(*billed));
    *billed = after;
}

fn cfg_err(e: ClusterError) -> ConfigError {
    ConfigError::invalid("cluster baseline", e.to_string())
}

/// How a rejoining worker's model catch-up crosses the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResyncMode {
    /// The pre-chunking path: one donor ships the whole checkpoint as a
    /// single monolithic [`Message::FinalModel`] frame. Kept for the
    /// monolithic-vs-chunked benchmark and as the conformance reference.
    Monolithic,
    /// The default: the donor's checkpoint is published as a chunk
    /// manifest and the joiner fans verified chunk downloads across
    /// every in-sync peer, fastest first (see
    /// [`crate::DownloadScheduler`]).
    Chunked,
}

/// What one joiner catch-up put on the wire — appended to
/// [`BaselineClusterTrainer::resync_log`] per resync.
#[derive(Debug, Clone)]
pub struct ResyncReport {
    /// The worker that caught up.
    pub rank: u32,
    /// The preferred donor (first in the bandwidth ranking; the peer
    /// whose checkpoint defined the manifest).
    pub donor: u32,
    /// Which wire path the resync took.
    pub mode: ResyncMode,
    /// Total framed bytes the resync moved (requests + replies,
    /// envelopes included).
    pub wire_bytes: u64,
    /// The checkpoint blob's size (the irreducible payload).
    pub blob_bytes: u64,
    /// Chunks fetched (1 for the monolithic path).
    pub chunks: u32,
    /// Distinct peers that served accepted data, ascending.
    pub sources: Vec<u32>,
    /// Chunk re-requests (rejections, drops, corruption); 0 monolithic.
    pub retries: u64,
}

/// A [`Trainer`] that drives one of the seven baseline algorithms as a
/// real framed message exchange over a [`Transport`].
///
/// The driver is the cluster: it holds the worker [`Fleet`], but every
/// payload a baseline exchanges — gradients, models, sparse diffs,
/// masked values — is encoded, sent, received, and decoded, and the
/// *decoded* values are what the arithmetic consumes. See the module
/// docs for the per-algorithm wire patterns and the conformance
/// invariant.
pub struct BaselineClusterTrainer<T: Transport> {
    fleet: Fleet,
    algo: AlgoState,
    name: &'static str,
    wire: Wire<T>,
    tap: WireTap,
    billed_control: u64,
    rounds: u64,
    /// How joiner catch-up crosses the wire (default chunked).
    resync_mode: ResyncMode,
    /// Chunk size for chunked resync.
    chunk_size: u32,
    /// The latest bandwidth snapshot, used to rank chunk-serving peers
    /// toward a joiner (`None` ranks by ascending rank).
    bw: Option<BandwidthMatrix>,
    /// Monotone manifest epoch across resyncs.
    resync_epoch: u64,
    /// One report per completed resync, in order.
    resync_log: Vec<ResyncReport>,
    /// Telemetry recorder (disabled by default; captured from the
    /// [`RoundCtx`] when the driver installed one, or set explicitly
    /// via [`Self::with_telemetry`]).
    telemetry: Recorder,
    /// How many [`Self::resync_log`] entries have already been emitted
    /// as `"resync"` telemetry events — resyncs happen between rounds,
    /// so the next [`Self::try_step`] drains the tail.
    resync_emitted: usize,
    /// Resync transfers `(src, dst, framed_bytes)` not yet priced into a
    /// round's timing — drained by the next [`Self::try_step`] so the
    /// DES charges catch-up traffic like any other transfer.
    pending_resync: Vec<(usize, usize, u64)>,
}

impl BaselineClusterTrainer<LoopbackTransport> {
    /// Builds a baseline cluster over the in-process loopback transport.
    pub fn loopback(
        kind: BaselineKind,
        parts: Vec<Dataset>,
        factory: impl Fn(&mut StdRng) -> Model,
        seed: u64,
        batch_size: usize,
        lr: f32,
        tap: WireTap,
    ) -> Result<Self, ConfigError> {
        let transport = LoopbackTransport::new(tap.clone());
        Self::with_transport(kind, parts, factory, seed, batch_size, lr, transport, tap)
    }
}

impl<T: Transport> BaselineClusterTrainer<T> {
    /// Builds a baseline cluster over an arbitrary transport. `tap` must
    /// be the same tap the transport meters into — it is the ground
    /// truth the driver bills control-plane bytes from.
    #[allow(clippy::too_many_arguments)]
    pub fn with_transport(
        kind: BaselineKind,
        parts: Vec<Dataset>,
        factory: impl Fn(&mut StdRng) -> Model,
        seed: u64,
        batch_size: usize,
        lr: f32,
        transport: T,
        tap: WireTap,
    ) -> Result<Self, ConfigError> {
        let fleet = Fleet::with_partitions(parts, factory, seed, batch_size, lr)?;
        let n = fleet.n_params();
        let check_ring = |what: &'static str| {
            if fleet.len() < 3 {
                return Err(ConfigError::invalid(
                    what,
                    format!("a ring needs at least 3 workers, got {}", fleet.len()),
                ));
            }
            Ok(())
        };
        let check_compression = |what: &'static str, c: f64| {
            if !(c >= 1.0 && c.is_finite()) {
                return Err(ConfigError::invalid(
                    what,
                    format!("compression {c} must be a finite ratio >= 1"),
                ));
            }
            Ok(())
        };
        let check_ps = |what: &'static str, participation: f64, local_steps: usize| {
            if !(participation > 0.0 && participation <= 1.0) {
                return Err(ConfigError::invalid(
                    what,
                    format!("participation {participation} must be in (0, 1]"),
                ));
            }
            if local_steps == 0 {
                return Err(ConfigError::invalid(what, "local_steps must be >= 1"));
            }
            Ok(())
        };
        let (algo, name) = match kind {
            BaselineKind::Psgd => (AlgoState::Psgd, "PSGD"),
            BaselineKind::DPsgd => {
                check_ring("DPsgd")?;
                (AlgoState::DPsgd, "D-PSGD")
            }
            BaselineKind::DcdPsgd { compression } => {
                check_ring("DcdPsgd")?;
                check_compression("DcdPsgd", compression)?;
                let broadcast = (0..fleet.len()).map(|r| fleet.worker(r).flat()).collect();
                (
                    AlgoState::Dcd {
                        compression,
                        broadcast,
                    },
                    "DCD-PSGD",
                )
            }
            BaselineKind::TopK { compression } => {
                check_compression("TopKPsgd", compression)?;
                let compressors = (0..fleet.len())
                    .map(|_| ErrorFeedbackTopK::with_ratio(n, compression))
                    .collect();
                (
                    AlgoState::TopK {
                        compression,
                        compressors,
                    },
                    "TopK-PSGD",
                )
            }
            BaselineKind::FedAvg {
                participation,
                local_steps,
            } => {
                check_ps("FedAvgConfig", participation, local_steps)?;
                (
                    AlgoState::FedAvg {
                        participation,
                        local_steps,
                        server_model: fleet.worker(0).flat(),
                        server: None,
                        rng: StdRng::seed_from_u64(derive_seed(seed, 0, streams::CLIENT_SAMPLE)),
                    },
                    "FedAvg",
                )
            }
            BaselineKind::SFedAvg {
                participation,
                local_steps,
                compression,
            } => {
                check_ps("SFedAvg", participation, local_steps)?;
                check_compression("SFedAvg", compression)?;
                (
                    AlgoState::SFedAvg {
                        participation,
                        local_steps,
                        compression,
                        server_model: fleet.worker(0).flat(),
                        server: None,
                        rng: StdRng::seed_from_u64(derive_seed(seed, 1, streams::CLIENT_SAMPLE)),
                        mask: RandomMask::from_indices(n, Vec::new()),
                    },
                    "S-FedAvg",
                )
            }
            BaselineKind::RandomChoose { compression } => {
                check_compression("RandomChoose", compression)?;
                (
                    AlgoState::Random {
                        compression,
                        rng: StdRng::seed_from_u64(derive_seed(seed, 2, streams::MATCHING)),
                        mask: RandomMask::from_indices(n, Vec::new()),
                    },
                    "RandomChoose",
                )
            }
        };
        let billed_control = tap.snapshot().control_bytes;
        Ok(BaselineClusterTrainer {
            fleet,
            algo,
            name,
            wire: Wire {
                transport,
                stall_limit: STALL_SWEEP_LIMIT,
            },
            tap,
            billed_control,
            rounds: 0,
            resync_mode: ResyncMode::Chunked,
            chunk_size: DEFAULT_CHUNK_BYTES,
            bw: None,
            resync_epoch: 0,
            resync_log: Vec::new(),
            pending_resync: Vec::new(),
            telemetry: Recorder::disabled(),
            resync_emitted: 0,
        })
    }

    /// Selects how joiner catch-up crosses the wire (default
    /// [`ResyncMode::Chunked`]; the benchmark flips this to compare).
    pub fn with_resync_mode(mut self, mode: ResyncMode) -> Self {
        self.resync_mode = mode;
        self
    }

    /// Replaces the chunk size for chunked resync (default
    /// [`DEFAULT_CHUNK_BYTES`]). Tests shrink it so small models still
    /// split into enough chunks to fan across peers.
    pub fn with_chunk_size(mut self, bytes: u32) -> Self {
        assert!(bytes > 0, "chunk size must be positive");
        self.chunk_size = bytes;
        self
    }

    /// Supplies the bandwidth snapshot used to rank chunk-serving peers
    /// toward a joiner, fastest first (without it, peers rank by
    /// ascending rank).
    pub fn with_bandwidth(mut self, bw: &BandwidthMatrix) -> Self {
        self.bw = Some(bw.clone());
        self
    }

    /// One report per completed joiner catch-up, in completion order.
    pub fn resync_log(&self) -> &[ResyncReport] {
        &self.resync_log
    }

    /// One worker's flat parameters (tests, bit-identity checks).
    pub fn worker_params(&self, rank: usize) -> Vec<f32> {
        self.fleet.worker(rank).flat()
    }

    /// Attaches a telemetry recorder for drivers that step the trainer
    /// directly (the [`saps_core::Experiment`] path installs its own
    /// through the [`RoundCtx`]). Recording never changes the
    /// arithmetic — bit-identity is pinned by `tests/telemetry.rs`.
    pub fn with_telemetry(mut self, telemetry: Recorder) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Lowers the stall tolerance (in 1 ms receive sweeps) — test hook.
    pub fn with_stall_limit(mut self, sweeps: u32) -> Self {
        self.wire.stall_limit = sweeps;
        self
    }

    /// The wire tap metering this cluster's transport.
    pub fn tap(&self) -> &WireTap {
        &self.tap
    }

    /// Runs one round, surfacing wire faults as typed errors.
    pub fn try_step(&mut self, ctx: &mut RoundCtx<'_>) -> Result<RoundReport, ClusterError> {
        if ctx.telemetry.is_enabled() {
            self.telemetry = ctx.telemetry.clone();
        }
        // Keep the shared tap's transfer log bounded: the baseline
        // drivers bill from their own records, not the transfer rows.
        self.tap.take_transfers();
        let stepped = match self.algo.kind() {
            Kind::Psgd => self.step_psgd(ctx),
            Kind::DPsgd => self.step_dpsgd(ctx),
            Kind::Dcd => self.step_dcd(ctx),
            Kind::TopK => self.step_topk(ctx),
            Kind::FedAvg => self.step_fedavg(ctx),
            Kind::SFedAvg => self.step_sfedavg(ctx),
            Kind::Random => self.step_random(ctx),
        };
        let mut rep = match stepped {
            Ok(rep) => rep,
            Err(e) => {
                if self.telemetry.is_enabled() {
                    if let ClusterError::Protocol(msg) = &e {
                        if msg.starts_with("transport quiescent") {
                            self.telemetry.add("cluster.stalls", 1);
                            self.telemetry.event(
                                "stall",
                                Some(self.rounds),
                                vec![
                                    ("round", self.rounds.into()),
                                    ("detail", msg.as_str().into()),
                                ],
                            );
                            self.telemetry.crash_dump("stall");
                        }
                    }
                }
                return Err(e);
            }
        };
        // Catch-up traffic since the last round is priced like any other
        // transfer: the DES charges the framed resync bytes over the
        // same links the round's payloads contend on.
        if !self.pending_resync.is_empty() {
            let resync = std::mem::take(&mut self.pending_resync);
            let t = ctx.price_p2p(&resync);
            rep.comm_time_s += t.transfer_s;
            rep.round_time_s += t.transfer_s;
        }
        if self.telemetry.is_enabled() {
            let tel = &self.telemetry;
            tel.add("cluster.rounds", 1);
            let w = self.tap.snapshot();
            tel.set_gauge("wire.data_bytes", w.data_bytes as f64);
            tel.set_gauge("wire.control_bytes", w.control_bytes as f64);
            tel.set_gauge("wire.model_bytes", w.model_bytes as f64);
            tel.set_gauge("wire.serve_bytes", w.serve_bytes as f64);
            tel.set_gauge("wire.total_bytes", w.total_bytes as f64);
            tel.set_gauge("wire.frames", w.frames as f64);
            // Resyncs ran between rounds; surface the log's tail now
            // that their bytes are priced into this round's timing.
            for r in &self.resync_log[self.resync_emitted..] {
                tel.add("cluster.resyncs", 1);
                tel.event(
                    "resync",
                    Some(self.rounds),
                    vec![
                        ("rank", u64::from(r.rank).into()),
                        ("donor", u64::from(r.donor).into()),
                        ("mode", format!("{:?}", r.mode).into()),
                        ("wire_bytes", r.wire_bytes.into()),
                        ("blob_bytes", r.blob_bytes.into()),
                        ("chunks", u64::from(r.chunks).into()),
                        ("sources", (r.sources.len() as u64).into()),
                        ("retries", r.retries.into()),
                    ],
                );
            }
            self.resync_emitted = self.resync_log.len();
        }
        self.tap.take_transfers();
        self.rounds += 1;
        Ok(rep)
    }

    /// Per-worker `(rank, (Σloss, Σacc))` for one local SGD step on
    /// every active worker — the per-lane arithmetic of
    /// [`Fleet::sgd_step_all_on`], kept per rank so the sums can cross
    /// the wire before the mean reduction.
    fn local_sgd_stats(fleet: &mut Fleet, ctx: &RoundCtx<'_>) -> Vec<(usize, (f64, f64))> {
        let (bs, lr) = (fleet.batch_size, fleet.lr);
        let items = fleet.active_workers_mut();
        ctx.exec.par_map(items, |_, (r, w)| {
            let (l, a) = w.sgd_step(bs, lr);
            (r, (l as f64, a as f64))
        })
    }

    /// [`Self::local_sgd_stats`] for gradient accumulation (no step).
    fn local_grad_stats(fleet: &mut Fleet, ctx: &RoundCtx<'_>) -> Vec<(usize, (f64, f64))> {
        let bs = fleet.batch_size;
        let items = fleet.active_workers_mut();
        ctx.exec.par_map(items, |_, (r, w)| {
            let (l, a) = w.accumulate_grads(bs);
            (r, (l as f64, a as f64))
        })
    }

    /// PSGD: the ring all-reduce run hop by hop. Each reduce-scatter and
    /// allgather step frames the chunk a position forwards as a
    /// [`Message::DensePayload`]; receivers fold the *decoded* chunk in
    /// the exact chunk-rotated order [`saps_baselines::allreduce`] pins,
    /// so every worker applies the bit-identical mean gradient.
    fn step_psgd(&mut self, ctx: &mut RoundCtx<'_>) -> Result<RoundReport, ClusterError> {
        let round = self.rounds;
        let wire = &mut self.wire;
        let fleet = &mut self.fleet;
        let bw = ctx.bw;
        let exec = ctx.exec;
        let ranks = fleet.active_ranks();
        let m = ranks.len();
        let n = fleet.n_params();

        let per_worker = Self::local_grad_stats(fleet, ctx);
        let (sum_l, sum_a) = wire.exchange_stats(round, &per_worker)?;
        let denom = m.max(1) as f64;
        let (loss, acc) = ((sum_l / denom) as f32, (sum_a / denom) as f32);

        let grads: Vec<Vec<f32>> = ranks
            .iter()
            .map(|&r| fleet.worker(r).model().flat_grads())
            .collect();
        let at = |r: usize| Addr::Worker(r as u32);

        // Reduce-scatter: m−1 hops; position i forwards its running
        // partial of chunk `reduce_scatter_chunk(m, i, s)` to its ring
        // successor, which folds decoded + own (the pinned fold order).
        let mut partial = grads.clone();
        let mut framed = vec![0u64; m];
        for s in 0..m.saturating_sub(1) {
            for i in 0..m {
                let range = chunk_range(n, m, reduce_scatter_chunk(m, i, s));
                let msg = Message::DensePayload {
                    round,
                    values: partial[i][range].to_vec(),
                };
                framed[i] += wire.send(at(ranks[i]), at(ranks[(i + 1) % m]), &msg)?;
            }
            for i in 0..m {
                let dst = (i + 1) % m;
                let (from, msg) = wire.recv(at(ranks[dst]))?;
                let values = dense_values(msg, round, from)?;
                let range = chunk_range(n, m, reduce_scatter_chunk(m, i, s));
                if values.len() != range.len() {
                    return Err(ClusterError::Protocol(format!(
                        "ring chunk from {from}: {} values for a {}-element chunk",
                        values.len(),
                        range.len()
                    )));
                }
                for (j, v) in range.zip(values) {
                    partial[dst][j] = v + grads[dst][j];
                }
            }
        }
        // Each chunk completed at its owner; scale to the mean there.
        let inv = 1.0 / m as f32;
        let mut mean_at: Vec<Vec<f32>> = vec![vec![0.0f32; n]; m];
        for c in 0..m {
            let owner = (c + m - 1) % m;
            for j in chunk_range(n, m, c) {
                mean_at[owner][j] = partial[owner][j] * inv;
            }
        }
        // Allgather: m−1 hops forwarding the scaled chunks around the
        // ring until every position holds the full mean.
        for s in 0..m.saturating_sub(1) {
            for i in 0..m {
                let range = chunk_range(n, m, allgather_chunk(m, i, s));
                let msg = Message::DensePayload {
                    round,
                    values: mean_at[i][range].to_vec(),
                };
                framed[i] += wire.send(at(ranks[i]), at(ranks[(i + 1) % m]), &msg)?;
            }
            for i in 0..m {
                let dst = (i + 1) % m;
                let (from, msg) = wire.recv(at(ranks[dst]))?;
                let values = dense_values(msg, round, from)?;
                let range = chunk_range(n, m, allgather_chunk(m, i, s));
                for (j, v) in range.zip(values) {
                    mean_at[dst][j] = v;
                }
            }
        }
        // Identical update on every active replica, each lane applying
        // its own (bit-identical) assembled mean.
        let lr = fleet.lr;
        let means = &mean_at;
        let items = fleet.workers_mut_at(&ranks);
        exec.par_map(items, |i, (_, w)| {
            w.add_scaled(-lr, &means[i]);
            w.model_mut().zero_grads();
        });

        // Worker rows: the in-memory value-byte charges.
        let mut per_worker_max = 0u64;
        for i in 0..m {
            let bytes = ring_send_bytes(n, m, i);
            per_worker_max = per_worker_max.max(bytes);
            ctx.traffic.record_p2p(ranks[i], ranks[(i + 1) % m], bytes);
        }
        bill_control(&self.tap, &mut self.billed_control, ctx.traffic);
        ctx.traffic.end_round();
        // DES: the bytes actually framed through the busiest position.
        let framed_max = framed.iter().copied().max().unwrap_or(0);
        let timing = ctx.price_allreduce(&ranks, framed_max);
        let ring = topology::ring_edges_over(&ranks);
        let mean_link = ring.iter().map(|&(a, b)| bw.get(a, b)).sum::<f64>() / ring.len() as f64;
        let min_link = ring
            .iter()
            .map(|&(a, b)| bw.get(a, b))
            .fold(f64::INFINITY, f64::min);

        let mut rep = RoundReport::new();
        rep.mean_loss = loss;
        rep.mean_acc = acc;
        rep.set_timing(&timing);
        rep.epochs_advanced = self.fleet.epochs_per_round();
        rep.mean_link_bandwidth = mean_link;
        rep.min_link_bandwidth = min_link;
        Ok(rep)
    }

    /// D-PSGD: every active worker frames its dense post-step model to
    /// both ring neighbours; the mix `x_i ← (x̂_{i−1} + x_i + x̂_{i+1})/3`
    /// reads the *decoded* neighbour snapshots.
    fn step_dpsgd(&mut self, ctx: &mut RoundCtx<'_>) -> Result<RoundReport, ClusterError> {
        let round = self.rounds;
        let wire = &mut self.wire;
        let fleet = &mut self.fleet;
        let bw = ctx.bw;
        let exec = ctx.exec;
        let ranks = fleet.active_ranks();
        let m = ranks.len();
        let at = |r: usize| Addr::Worker(r as u32);

        let per_worker = Self::local_sgd_stats(fleet, ctx);
        let (sum_l, sum_a) = wire.exchange_stats(round, &per_worker)?;
        let denom = m.max(1) as f64;
        let (loss, acc) = ((sum_l / denom) as f32, (sum_a / denom) as f32);

        let mut transfers = Vec::with_capacity(2 * m);
        for i in 0..m {
            let values = fleet.worker(ranks[i]).flat();
            for peer in [ranks[(i + 1) % m], ranks[(i + m - 1) % m]] {
                let msg = Message::DensePayload {
                    round,
                    values: values.clone(),
                };
                let framed = wire.send(at(ranks[i]), at(peer), &msg)?;
                transfers.push((ranks[i], peer, framed));
            }
        }
        // Each active worker receives both neighbour models.
        let mut inbox: Vec<BTreeMap<usize, Vec<f32>>> = vec![BTreeMap::new(); m];
        for (i, slot) in inbox.iter_mut().enumerate() {
            for _ in 0..2 {
                let (from, msg) = wire.recv(at(ranks[i]))?;
                let src = worker_rank(from)?;
                slot.insert(src, dense_values(msg, round, from)?);
            }
        }
        let snapshots = &inbox;
        let items = fleet.workers_mut_at(&ranks);
        let mut mix_err = None;
        let results = exec.par_map(items, |i, (_, w)| {
            let (Some(prev), Some(next)) = (
                snapshots[i].get(&ranks[(i + m - 1) % m]),
                snapshots[i].get(&ranks[(i + 1) % m]),
            ) else {
                return false;
            };
            w.update_flat(|flat| {
                for k in 0..flat.len() {
                    flat[k] = (prev[k] + flat[k] + next[k]) / 3.0;
                }
            });
            true
        });
        if let Some(pos) = results.iter().position(|&ok| !ok) {
            mix_err = Some(ranks[pos]);
        }
        if let Some(rank) = mix_err {
            return Err(ClusterError::Protocol(format!(
                "worker {rank} missing a ring neighbour's model frame"
            )));
        }

        let dense_bytes = 4 * fleet.n_params() as u64;
        for i in 0..m {
            for peer in [ranks[(i + 1) % m], ranks[(i + m - 1) % m]] {
                ctx.traffic.record_p2p(ranks[i], peer, dense_bytes);
            }
        }
        bill_control(&self.tap, &mut self.billed_control, ctx.traffic);
        ctx.traffic.end_round();
        let timing = ctx.price_p2p(&transfers);

        let ring = topology::ring_edges_over(&ranks);
        let mean_link = ring.iter().map(|&(a, b)| bw.get(a, b)).sum::<f64>() / ring.len() as f64;
        let min_link = ring
            .iter()
            .map(|&(a, b)| bw.get(a, b))
            .fold(f64::INFINITY, f64::min);
        let mut rep = RoundReport::new();
        rep.mean_loss = loss;
        rep.mean_acc = acc;
        rep.set_timing(&timing);
        rep.epochs_advanced = self.fleet.epochs_per_round();
        rep.mean_link_bandwidth = mean_link;
        rep.min_link_bandwidth = min_link;
        Ok(rep)
    }

    /// DCD-PSGD: each worker top-k compresses `x_i − broadcast_i` and
    /// frames the sparse diff to both ring neighbours; the *decoded*
    /// patch updates the sender's broadcast replica (applied once, no
    /// matter how many neighbours received it) before the ring mix.
    fn step_dcd(&mut self, ctx: &mut RoundCtx<'_>) -> Result<RoundReport, ClusterError> {
        let AlgoState::Dcd {
            compression,
            broadcast,
        } = &mut self.algo
        else {
            unreachable!("dispatched on kind");
        };
        let round = self.rounds;
        let wire = &mut self.wire;
        let fleet = &mut self.fleet;
        let bw = ctx.bw;
        let exec = ctx.exec;
        let ranks = fleet.active_ranks();
        let m = ranks.len();
        let n = fleet.n_params();
        let k = ((n as f64 / *compression).round() as usize).max(1);
        let at = |r: usize| Addr::Worker(r as u32);

        let per_worker = Self::local_sgd_stats(fleet, ctx);
        let (sum_l, sum_a) = wire.exchange_stats(round, &per_worker)?;
        let denom = m.max(1) as f64;
        let (loss, acc) = ((sum_l / denom) as f32, (sum_a / denom) as f32);

        // Compress each worker's drift against its broadcast state (read
        // only — the patch is applied from the decoded frames below).
        let payloads: Vec<(Vec<u32>, Vec<f32>)> = {
            let fleet = &*fleet;
            let bcast = &*broadcast;
            exec.par_map(ranks.clone(), |_, r| {
                let x = fleet.worker(r).flat();
                let diff: Vec<f32> = x.iter().zip(bcast[r].iter()).map(|(a, b)| a - b).collect();
                let idx = top_k_indices(&diff, k);
                let vals: Vec<f32> = idx.iter().map(|&i| diff[i as usize]).collect();
                (idx, vals)
            })
        };
        let mut transfers = Vec::with_capacity(2 * m);
        for (i, (idx, vals)) in payloads.iter().enumerate() {
            for peer in [ranks[(i + 1) % m], ranks[(i + m - 1) % m]] {
                let msg = Message::SparsePayload {
                    round,
                    indices: idx.clone(),
                    values: vals.clone(),
                };
                let framed = wire.send(at(ranks[i]), at(peer), &msg)?;
                transfers.push((ranks[i], peer, framed));
            }
        }
        // Drain both neighbour frames at every worker; both copies of a
        // sender's diff are identical, so keep one per sender.
        let mut decoded: BTreeMap<usize, (Vec<u32>, Vec<f32>)> = BTreeMap::new();
        for &r in &ranks {
            for _ in 0..2 {
                let (from, msg) = wire.recv(at(r))?;
                let src = worker_rank(from)?;
                decoded.insert(src, sparse_values(msg, round, from)?);
            }
        }
        // Apply each decoded patch once to the sender's broadcast
        // replica — densified first, so the elementwise `+= 0.0` on
        // untouched coordinates matches the in-memory arithmetic.
        for &r in &ranks {
            let (idx, vals) = decoded.get(&r).ok_or_else(|| {
                ClusterError::Protocol(format!("no sparse diff framed by worker {r}"))
            })?;
            let sparse = densify(n, idx, vals);
            for (b, s) in broadcast[r].iter_mut().zip(&sparse) {
                *b += s;
            }
        }
        let payload_bytes = payloads
            .last()
            .map_or(0, |(idx, _)| codec::sparse_iv_bytes(idx.len()));

        // Ring mix against the (now patched) broadcast replicas.
        let bcast = &*broadcast;
        let items = fleet.workers_mut_at(&ranks);
        exec.par_map(items, |i, (_, w)| {
            let prev = &bcast[ranks[(i + m - 1) % m]];
            let next = &bcast[ranks[(i + 1) % m]];
            w.update_flat(|flat| {
                for p in 0..flat.len() {
                    flat[p] = (prev[p] + flat[p] + next[p]) / 3.0;
                }
            });
        });

        for i in 0..m {
            for peer in [ranks[(i + 1) % m], ranks[(i + m - 1) % m]] {
                ctx.traffic.record_p2p(ranks[i], peer, payload_bytes);
            }
        }
        bill_control(&self.tap, &mut self.billed_control, ctx.traffic);
        ctx.traffic.end_round();
        let timing = ctx.price_p2p(&transfers);

        let ring = topology::ring_edges_over(&ranks);
        let mean_link = ring.iter().map(|&(a, b)| bw.get(a, b)).sum::<f64>() / ring.len() as f64;
        let min_link = ring
            .iter()
            .map(|&(a, b)| bw.get(a, b))
            .fold(f64::INFINITY, f64::min);
        let mut rep = RoundReport::new();
        rep.mean_loss = loss;
        rep.mean_acc = acc;
        rep.set_timing(&timing);
        rep.epochs_advanced = self.fleet.epochs_per_round();
        rep.mean_link_bandwidth = mean_link;
        rep.min_link_bandwidth = min_link;
        Ok(rep)
    }

    /// TopK-PSGD: every worker frames its error-feedback top-k gradient
    /// to every other active worker (allgather); each worker folds the
    /// *decoded* payload set in ascending rank order into the identical
    /// mean and applies it locally.
    fn step_topk(&mut self, ctx: &mut RoundCtx<'_>) -> Result<RoundReport, ClusterError> {
        let AlgoState::TopK { compressors, .. } = &mut self.algo else {
            unreachable!("dispatched on kind");
        };
        let round = self.rounds;
        let wire = &mut self.wire;
        let fleet = &mut self.fleet;
        let bw = ctx.bw;
        let exec = ctx.exec;
        let ranks = fleet.active_ranks();
        let m = ranks.len();
        let n = fleet.n_params();
        let at = |r: usize| Addr::Worker(r as u32);

        let per_worker = Self::local_grad_stats(fleet, ctx);
        let (sum_l, sum_a) = wire.exchange_stats(round, &per_worker)?;
        let denom = m.max(1) as f64;
        let (loss, acc) = ((sum_l / denom) as f32, (sum_a / denom) as f32);

        let payloads = {
            let fleet = &*fleet;
            let comp_items = select_ranked_mut(compressors, &ranks);
            exec.par_map(comp_items, |_, (r, comp)| {
                comp.compress(&fleet.worker(r).model().flat_grads())
            })
        };
        let mut framed_max = 0u64;
        for (i, (idx, vals)) in payloads.iter().enumerate() {
            for (j, &dst) in ranks.iter().enumerate() {
                if j != i {
                    let msg = Message::SparsePayload {
                        round,
                        indices: idx.clone(),
                        values: vals.clone(),
                    };
                    framed_max = framed_max.max(wire.send(at(ranks[i]), at(dst), &msg)?);
                }
            }
        }
        // Each worker drains the other m−1 payloads.
        type SparseInbox = BTreeMap<usize, (Vec<u32>, Vec<f32>)>;
        let mut deliveries: Vec<SparseInbox> = vec![BTreeMap::new(); m];
        for (i, slot) in deliveries.iter_mut().enumerate() {
            for _ in 0..m.saturating_sub(1) {
                let (from, msg) = wire.recv(at(ranks[i]))?;
                let src = worker_rank(from)?;
                slot.insert(src, sparse_values(msg, round, from)?);
            }
        }
        // Per-worker mean from the decoded payloads, folded in ascending
        // rank order (own payload slots in from the local copy, exactly
        // where a real allgather keeps it).
        let lr = fleet.lr;
        let own = &payloads;
        let recv = &deliveries;
        let ranks_ref = &ranks;
        let items = fleet.workers_mut_at(&ranks);
        let fold_ok = exec.par_map(items, |i, (_, w)| {
            let mut mean = vec![0.0f32; n];
            for (pos, &src) in ranks_ref.iter().enumerate() {
                let (idx, vals) = if pos == i {
                    (&own[pos].0, &own[pos].1)
                } else {
                    match recv[i].get(&src) {
                        Some((idx, vals)) => (idx, vals),
                        None => return false,
                    }
                };
                let dense = densify(n, idx, vals);
                saps_tensor::ops::axpy(1.0 / m as f32, &dense, &mut mean);
            }
            w.add_scaled(-lr, &mean);
            w.model_mut().zero_grads();
            true
        });
        if let Some(pos) = fold_ok.iter().position(|&ok| !ok) {
            return Err(ClusterError::Protocol(format!(
                "worker {} missing an allgather payload frame",
                ranks[pos]
            )));
        }

        let mut payload_bytes = 0u64;
        for (i, (idx, _)) in payloads.iter().enumerate() {
            let bytes = codec::sparse_iv_bytes(idx.len());
            payload_bytes = payload_bytes.max(bytes);
            for (j, &dst) in ranks.iter().enumerate() {
                if j != i {
                    ctx.traffic.record_p2p(ranks[i], dst, bytes);
                }
            }
        }
        bill_control(&self.tap, &mut self.billed_control, ctx.traffic);
        ctx.traffic.end_round();
        let timing = ctx.price_allgather(&ranks, framed_max);
        let mut min_link = f64::INFINITY;
        let mut sum_link = 0.0f64;
        let mut links = 0usize;
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    let l = bw.get(ranks[i], ranks[j]);
                    min_link = min_link.min(l);
                    sum_link += l;
                    links += 1;
                }
            }
        }

        let mut rep = RoundReport::new();
        rep.mean_loss = loss;
        rep.mean_acc = acc;
        rep.set_timing(&timing);
        rep.epochs_advanced = self.fleet.epochs_per_round();
        rep.mean_link_bandwidth = sum_link / links.max(1) as f64;
        rep.min_link_bandwidth = min_link;
        Ok(rep)
    }

    /// FedAvg: dense downloads framed from the pinned server node, local
    /// steps started from the *decoded* global model, dense uploads
    /// framed back and averaged from the decoded copies in ascending
    /// client order.
    fn step_fedavg(&mut self, ctx: &mut RoundCtx<'_>) -> Result<RoundReport, ClusterError> {
        let AlgoState::FedAvg {
            participation,
            local_steps,
            server_model,
            server,
            rng,
        } = &mut self.algo
        else {
            unreachable!("dispatched on kind");
        };
        let round = self.rounds;
        let wire = &mut self.wire;
        let fleet = &mut self.fleet;
        let exec = ctx.exec;
        let n = fleet.n_params();
        let at = |r: usize| Addr::Worker(r as u32);

        let clients = {
            let mut ranks = fleet.active_ranks();
            let m = ranks.len();
            let k = ((m as f64 * *participation).round() as usize).clamp(1, m);
            ranks.shuffle(rng);
            ranks.truncate(k);
            ranks.sort_unstable();
            ranks
        };
        let server_rank = *server.get_or_insert_with(|| ctx.bw.best_server());
        let dense_bytes = 4 * n as u64;

        for &r in &clients {
            ctx.traffic.record_download(r, dense_bytes);
        }
        // Dense downloads: one frame per selected client.
        let mut down_framed: BTreeMap<usize, u64> = BTreeMap::new();
        for &r in &clients {
            let msg = Message::DensePayload {
                round,
                values: server_model.clone(),
            };
            down_framed.insert(r, wire.send(at(server_rank), at(r), &msg)?);
        }
        let mut global_of: BTreeMap<usize, Vec<f32>> = BTreeMap::new();
        for &r in &clients {
            let (from, msg) = wire.recv(at(r))?;
            global_of.insert(r, dense_values(msg, round, from)?);
        }
        // Local steps from the decoded global, fanned out per client.
        let (bs, lr) = (fleet.batch_size, fleet.lr);
        let steps_each = *local_steps;
        let globals = &global_of;
        let items = fleet.workers_mut_at(&clients);
        let per_client: Vec<(usize, (f64, f64))> = exec.par_map(items, |_, (r, w)| {
            w.set_flat(&globals[&r]);
            let mut l = 0.0f64;
            let mut a = 0.0f64;
            for _ in 0..steps_each {
                let (li, ai) = w.sgd_step(bs, lr);
                l += li as f64;
                a += ai as f64;
            }
            (r, (l, a))
        });
        let (sum_l, sum_a) = wire.exchange_stats(round, &per_client)?;
        let steps = (clients.len() * steps_each) as f64;

        // Dense uploads, averaged from the decoded copies.
        let mut up_framed: BTreeMap<usize, u64> = BTreeMap::new();
        for &r in &clients {
            let msg = Message::DensePayload {
                round,
                values: fleet.worker(r).flat(),
            };
            up_framed.insert(r, wire.send(at(r), at(server_rank), &msg)?);
            ctx.traffic.record_upload(r, dense_bytes);
        }
        let mut uploads: BTreeMap<usize, Vec<f32>> = BTreeMap::new();
        for _ in &clients {
            let (from, msg) = wire.recv(at(server_rank))?;
            uploads.insert(worker_rank(from)?, dense_values(msg, round, from)?);
        }
        let mut accum = vec![0.0f32; n];
        for &r in &clients {
            let flat = uploads
                .get(&r)
                .ok_or_else(|| ClusterError::Protocol(format!("no upload framed by client {r}")))?;
            for (a, v) in accum.iter_mut().zip(flat) {
                *a += v;
            }
        }
        let inv = 1.0 / clients.len() as f32;
        for a in &mut accum {
            *a *= inv;
        }
        *server_model = accum;
        bill_control(&self.tap, &mut self.billed_control, ctx.traffic);
        ctx.traffic.end_round();

        let transfers: Vec<(usize, u64, u64)> = clients
            .iter()
            .map(|&r| (r, up_framed[&r], down_framed[&r]))
            .collect();
        let timing = ctx.price_ps(server_rank, &transfers);

        let mut rep = RoundReport::new();
        rep.mean_loss = (sum_l / steps) as f32;
        rep.mean_acc = (sum_a / steps) as f32;
        rep.set_timing(&timing);
        rep.epochs_advanced = self.fleet.epochs_per_round() * steps_each as f64 * *participation;
        Ok(rep)
    }

    /// S-FedAvg: dense downloads as FedAvg; uploads are per-client
    /// random-mask sparse frames, folded at the server from the decoded
    /// `(index, value)` pairs in the sampled (shuffled) client order.
    fn step_sfedavg(&mut self, ctx: &mut RoundCtx<'_>) -> Result<RoundReport, ClusterError> {
        let AlgoState::SFedAvg {
            participation,
            local_steps,
            compression,
            server_model,
            server,
            rng,
            mask,
        } = &mut self.algo
        else {
            unreachable!("dispatched on kind");
        };
        let round = self.rounds;
        let wire = &mut self.wire;
        let fleet = &mut self.fleet;
        let exec = ctx.exec;
        let n = fleet.n_params();
        let at = |r: usize| Addr::Worker(r as u32);

        // The sampled client list stays in shuffled order — the upload
        // mask RNG draws and the server fold both follow it.
        let clients = {
            let mut ranks = fleet.active_ranks();
            let m = ranks.len();
            let k = ((m as f64 * *participation).round() as usize).clamp(1, m);
            ranks.shuffle(rng);
            ranks.truncate(k);
            ranks
        };
        let server_rank = *server.get_or_insert_with(|| ctx.bw.best_server());
        let dense_bytes = 4 * n as u64;

        for &r in &clients {
            ctx.traffic.record_download(r, dense_bytes);
        }
        let mut down_framed: BTreeMap<usize, u64> = BTreeMap::new();
        for &r in &clients {
            let msg = Message::DensePayload {
                round,
                values: server_model.clone(),
            };
            down_framed.insert(r, wire.send(at(server_rank), at(r), &msg)?);
        }
        let mut global_of: BTreeMap<usize, Vec<f32>> = BTreeMap::new();
        for &r in &clients {
            let (from, msg) = wire.recv(at(r))?;
            global_of.insert(r, dense_values(msg, round, from)?);
        }
        let (bs, lr) = (fleet.batch_size, fleet.lr);
        let steps_each = *local_steps;
        let globals = &global_of;
        let items = fleet.workers_mut_at(&clients);
        let per_client: Vec<(usize, (f64, f64))> = exec.par_map(items, |_, (r, w)| {
            w.set_flat(&globals[&r]);
            let mut l = 0.0f64;
            let mut a = 0.0f64;
            for _ in 0..steps_each {
                let (li, ai) = w.sgd_step(bs, lr);
                l += li as f64;
                a += ai as f64;
            }
            (r, (l, a))
        });
        let (sum_l, sum_a) = wire.exchange_stats(round, &per_client)?;
        let steps = (clients.len() * steps_each) as f64;

        // Sparse uploads: per-client mask, framed as explicit
        // (index, value) pairs; the server folds the decoded pairs.
        let mut sums = vec![0.0f32; n];
        let mut counts = vec![0u32; n];
        let mut transfers = Vec::with_capacity(clients.len());
        for &r in &clients {
            mask.regenerate(n, *compression, rng.gen(), round);
            let payload = fleet.worker(r).sparse_payload(mask);
            let msg = Message::SparsePayload {
                round,
                indices: mask.indices().to_vec(),
                values: payload,
            };
            let up_framed = wire.send(at(r), at(server_rank), &msg)?;
            ctx.traffic
                .record_upload(r, codec::sparse_iv_bytes(mask.nnz()));
            let (from, reply) = wire.recv(at(server_rank))?;
            let (idx, vals) = sparse_values(reply, round, from)?;
            for (&i, &v) in idx.iter().zip(&vals) {
                sums[i as usize] += v;
                counts[i as usize] += 1;
            }
            transfers.push((r, up_framed, down_framed[&r]));
        }
        for i in 0..n {
            if counts[i] > 0 {
                server_model[i] = sums[i] / counts[i] as f32;
            }
        }
        bill_control(&self.tap, &mut self.billed_control, ctx.traffic);
        ctx.traffic.end_round();
        let timing = ctx.price_ps(server_rank, &transfers);

        let mut rep = RoundReport::new();
        rep.mean_loss = (sum_l / steps) as f32;
        rep.mean_acc = (sum_a / steps) as f32;
        rep.set_timing(&timing);
        rep.epochs_advanced = self.fleet.epochs_per_round() * steps_each as f64 * *participation;
        Ok(rep)
    }

    /// RandomChoose: uniformly random pairs exchange shared-mask values
    /// as [`Message::MaskedPayload`] frames (indices implied by the
    /// shared mask — 4 bytes/coordinate on the wire, like SAPS); each
    /// matched worker merges the decoded peer values.
    fn step_random(&mut self, ctx: &mut RoundCtx<'_>) -> Result<RoundReport, ClusterError> {
        let AlgoState::Random {
            compression,
            rng,
            mask,
        } = &mut self.algo
        else {
            unreachable!("dispatched on kind");
        };
        let round = self.rounds;
        let wire = &mut self.wire;
        let fleet = &mut self.fleet;
        let bw = ctx.bw;
        let n = fleet.n_params();
        let at = |r: usize| Addr::Worker(r as u32);

        let per_worker = Self::local_sgd_stats(fleet, ctx);
        let m_active = per_worker.len();
        let (sum_l, sum_a) = wire.exchange_stats(round, &per_worker)?;
        let denom = m_active.max(1) as f64;
        let (loss, acc) = ((sum_l / denom) as f32, (sum_a / denom) as f32);

        let pairs = {
            let mut ranks = fleet.active_ranks();
            let m = ranks.len();
            if m < 2 {
                Vec::new()
            } else if m.is_multiple_of(2) {
                let matching = random_perfect_matching(m, rng);
                matching
                    .pairs()
                    .iter()
                    .map(|&(i, j)| (ranks[i], ranks[j]))
                    .collect()
            } else {
                ranks.shuffle(rng);
                ranks.chunks_exact(2).map(|c| (c[0], c[1])).collect()
            }
        };
        mask.regenerate(n, *compression, rng.gen(), round);
        let payload_bytes = codec::sparse_shared_mask_bytes(mask.nnz());

        let mut transfers = Vec::new();
        let mut link_sum = 0.0f64;
        let mut link_min = f64::INFINITY;
        for &(i, j) in &pairs {
            let pi = fleet.worker(i).sparse_payload(mask);
            let pj = fleet.worker(j).sparse_payload(mask);
            let fi = wire.send(at(i), at(j), &Message::MaskedPayload { round, values: pi })?;
            let fj = wire.send(at(j), at(i), &Message::MaskedPayload { round, values: pj })?;
            let (from_j, msg_at_j) = wire.recv(at(j))?;
            let peer_of_j = masked_values(msg_at_j, round, from_j)?;
            let (from_i, msg_at_i) = wire.recv(at(i))?;
            let peer_of_i = masked_values(msg_at_i, round, from_i)?;
            fleet.worker_mut(i).merge_sparse(mask, &peer_of_i);
            fleet.worker_mut(j).merge_sparse(mask, &peer_of_j);
            ctx.traffic.record_p2p(i, j, payload_bytes);
            ctx.traffic.record_p2p(j, i, payload_bytes);
            transfers.push((i, j, fi));
            transfers.push((j, i, fj));
            link_sum += bw.get(i, j);
            link_min = link_min.min(bw.get(i, j));
        }
        bill_control(&self.tap, &mut self.billed_control, ctx.traffic);
        ctx.traffic.end_round();
        let timing = ctx.price_p2p(&transfers);

        let mut rep = RoundReport::new();
        rep.mean_loss = loss;
        rep.mean_acc = acc;
        rep.set_timing(&timing);
        rep.epochs_advanced = self.fleet.epochs_per_round();
        rep.mean_link_bandwidth = if pairs.is_empty() {
            0.0
        } else {
            link_sum / pairs.len() as f64
        };
        rep.min_link_bandwidth = if pairs.is_empty() { 0.0 } else { link_min };
        Ok(rep)
    }

    /// Serving candidates for `rank`'s catch-up: every other active
    /// worker, fastest toward the joiner first in the latest bandwidth
    /// snapshot (ascending rank on ties, or throughout when no snapshot
    /// was supplied).
    fn resync_peers(&self, rank: usize) -> Vec<usize> {
        let mut peers: Vec<usize> = self
            .fleet
            .active_ranks()
            .into_iter()
            .filter(|&r| r != rank)
            .collect();
        if let Some(bw) = &self.bw {
            peers.sort_by(|&a, &b| {
                bw.get(b, rank)
                    .partial_cmp(&bw.get(a, rank))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
        }
        peers
    }

    /// Catches a rejoining worker up to the fleet's model over the wire
    /// — chunked multi-peer download by default, one monolithic
    /// [`Message::FinalModel`] frame in [`ResyncMode::Monolithic`]. The
    /// installed parameters are bit-identical either way (pinned by
    /// `tests/chunk_catchup.rs`); failures surface as
    /// [`ClusterError::ResyncFailed`].
    fn resync_from_donor(&mut self, rank: usize) -> Result<(), ClusterError> {
        let res = match self.resync_mode {
            ResyncMode::Monolithic => self.resync_monolithic(rank),
            ResyncMode::Chunked => self.resync_chunked(rank),
        };
        if let Err(e) = &res {
            if self.telemetry.is_enabled() {
                self.telemetry.add("cluster.resync_failures", 1);
                let (donor, joiner) = match e {
                    ClusterError::ResyncFailed { donor, rank, .. } => {
                        (u64::from(*donor), u64::from(*rank))
                    }
                    _ => (rank as u64, rank as u64),
                };
                self.telemetry.event(
                    "resync.failed",
                    Some(self.rounds),
                    vec![
                        ("rank", joiner.into()),
                        ("donor", donor.into()),
                        ("detail", format!("{e}").into()),
                    ],
                );
                self.telemetry.crash_dump("resync failed");
            }
        }
        res
    }

    /// The pre-chunking path: the fastest live peer ships its whole
    /// checkpoint in one frame.
    fn resync_monolithic(&mut self, rank: usize) -> Result<(), ClusterError> {
        let donor = *self
            .resync_peers(rank)
            .first()
            .ok_or_else(|| ClusterError::ResyncFailed {
                donor: rank as u32,
                rank: rank as u32,
                detail: "no live peer to resync from".into(),
            })?;
        let blob = checkpoint::encode(&self.fleet.worker(donor).flat(), self.rounds);
        let blob_bytes = blob.len() as u64;
        let msg = Message::FinalModel {
            rank: donor as u32,
            checkpoint: blob.to_vec(),
        };
        let framed = self
            .wire
            .send(Addr::Worker(donor as u32), Addr::Worker(rank as u32), &msg)?;
        self.pending_resync.push((donor, rank, framed));
        let (from, reply) = self.wire.recv(Addr::Worker(rank as u32))?;
        let Message::FinalModel {
            checkpoint: blob, ..
        } = reply
        else {
            return Err(unexpected("FinalModel", &reply, from));
        };
        let (flat, _) = checkpoint::decode(bytes::Bytes::from(blob)).map_err(|e| {
            ClusterError::Protocol(format!("resync checkpoint from worker {donor}: {e}"))
        })?;
        let joiner = self.fleet.worker_mut(rank);
        joiner.set_flat(&flat);
        joiner.model_mut().zero_grads();
        self.resync_log.push(ResyncReport {
            rank: rank as u32,
            donor: donor as u32,
            mode: ResyncMode::Monolithic,
            wire_bytes: framed,
            blob_bytes,
            chunks: 1,
            sources: vec![donor as u32],
            retries: 0,
        });
        Ok(())
    }

    /// The chunked path: publish the preferred donor's checkpoint as a
    /// manifest and fan the joiner's verified chunk downloads across
    /// every in-sync peer. Lost and corrupt frames are tolerated — the
    /// scheduler re-sources each failed chunk from the next ranked peer
    /// until its attempt budget runs dry, at which point the typed
    /// [`ClusterError::ResyncFailed`] surfaces.
    fn resync_chunked(&mut self, rank: usize) -> Result<(), ClusterError> {
        let peers = self.resync_peers(rank);
        let donor = *peers.first().ok_or_else(|| ClusterError::ResyncFailed {
            donor: rank as u32,
            rank: rank as u32,
            detail: "no live peer to resync from".into(),
        })?;
        let blob = checkpoint::encode(&self.fleet.worker(donor).flat(), self.rounds);
        let blob_bytes = blob.len() as u64;
        self.resync_epoch += 1;
        let manifest = ChunkManifest::build(self.resync_epoch, self.rounds, &blob, self.chunk_size);
        // Each peer proves it can serve by re-encoding its own state and
        // checking it against the manifest — computed lazily, once per
        // peer, on the first chunk request it sees.
        let mut peer_blobs: BTreeMap<usize, Option<Vec<u8>>> = BTreeMap::new();
        let mut dl =
            DownloadScheduler::new(manifest.clone(), peers.iter().map(|&p| p as u32).collect());
        let at = |r: usize| Addr::Worker(r as u32);
        let mut wire_bytes = 0u64;
        while !dl.is_complete() {
            if let Some(chunk) = dl.failed_chunk() {
                return Err(ClusterError::ResyncFailed {
                    donor: donor as u32,
                    rank: rank as u32,
                    detail: format!("chunk {chunk} exhausted every serving peer"),
                });
            }
            // Fan every requestable chunk onto the wire.
            let mut asked = Vec::new();
            while let Some((peer, req)) = dl.next_request() {
                let framed = self.wire.send(at(rank), at(peer as usize), &req)?;
                wire_bytes += framed;
                self.pending_resync.push((rank, peer as usize, framed));
                asked.push(peer as usize);
            }
            // Serve each asked peer's inbox: requests that decode are
            // answered (verified slice, or a NACK when the peer's state
            // diverged from the manifest); corrupted ones count as lost.
            for peer in asked {
                while let Some((_, bytes)) = self.wire.transport.recv(at(peer))? {
                    let Ok(Message::ChunkRequest { epoch, index }) = frame::decode(&bytes) else {
                        continue;
                    };
                    let served = peer_blobs.entry(peer).or_insert_with(|| {
                        let own = checkpoint::encode(&self.fleet.worker(peer).flat(), self.rounds);
                        manifest.matches(&own).then(|| own.to_vec())
                    });
                    let reply = served
                        .as_ref()
                        .filter(|_| epoch == manifest.epoch)
                        .and_then(|blob| manifest.chunk_reply(blob, index))
                        .unwrap_or(Message::ChunkData {
                            epoch,
                            index,
                            checksum: 0,
                            data: Vec::new(),
                        });
                    let framed = self.wire.send(at(peer), at(rank), &reply)?;
                    wire_bytes += framed;
                    self.pending_resync.push((peer, rank, framed));
                }
            }
            // Drain the joiner's inbox into the scheduler. Frames the
            // transport corrupted fail to decode and count as lost.
            let mut progressed = false;
            while let Some((from, bytes)) = self.wire.transport.recv(at(rank))? {
                let Ok(Message::ChunkData {
                    epoch,
                    index,
                    checksum,
                    data,
                }) = frame::decode(&bytes)
                else {
                    continue;
                };
                let from = match from {
                    Addr::Worker(r) => r,
                    _ => continue,
                };
                if dl.on_chunk(from, epoch, index, checksum, &data) != ChunkOutcome::Duplicate {
                    progressed = true;
                }
            }
            if !progressed {
                // Requests or replies vanished on the wire: re-request
                // everything outstanding (each retry rotates peers).
                dl.requeue_outstanding();
            }
        }
        let assembled = dl.assemble().expect("complete download assembles");
        debug_assert_eq!(assembled, blob.to_vec());
        let (flat, _) = checkpoint::decode(bytes::Bytes::from(assembled)).map_err(|e| {
            ClusterError::Protocol(format!("assembled resync checkpoint for {rank}: {e}"))
        })?;
        let joiner = self.fleet.worker_mut(rank);
        joiner.set_flat(&flat);
        joiner.model_mut().zero_grads();
        self.resync_log.push(ResyncReport {
            rank: rank as u32,
            donor: donor as u32,
            mode: ResyncMode::Chunked,
            wire_bytes,
            blob_bytes,
            chunks: manifest.chunk_count(),
            sources: dl.sources().into_iter().collect(),
            retries: dl.retries(),
        });
        Ok(())
    }
}

impl<T: Transport> Trainer for BaselineClusterTrainer<T> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> RoundReport {
        self.try_step(ctx)
            .unwrap_or_else(|e| panic!("cluster baseline round failed: {e}"))
    }

    fn evaluate(&mut self, val: &Dataset, max_samples: usize) -> f32 {
        match &self.algo {
            AlgoState::Psgd | AlgoState::TopK { .. } => {
                let first = self.fleet.active_ranks()[0];
                let flat = self.fleet.worker(first).flat();
                self.fleet.evaluate_flat(&flat, val, max_samples)
            }
            AlgoState::DPsgd | AlgoState::Dcd { .. } | AlgoState::Random { .. } => {
                self.fleet.evaluate_average(val, max_samples)
            }
            AlgoState::FedAvg { server_model, .. } | AlgoState::SFedAvg { server_model, .. } => {
                let server = server_model.clone();
                self.fleet.evaluate_flat(&server, val, max_samples)
            }
        }
    }

    fn model_len(&self) -> usize {
        self.fleet.n_params()
    }

    fn worker_count(&self) -> usize {
        self.fleet.len()
    }

    fn set_worker_active(&mut self, rank: usize, active: bool) -> Result<(), ConfigError> {
        match self.algo.kind() {
            Kind::Psgd => {
                self.fleet.set_active(rank, active, 2)?;
                if active {
                    self.resync_from_donor(rank).map_err(cfg_err)?;
                }
            }
            Kind::TopK => {
                self.fleet.set_active(rank, active, 2)?;
                if active {
                    self.resync_from_donor(rank).map_err(cfg_err)?;
                    let AlgoState::TopK {
                        compression,
                        compressors,
                    } = &mut self.algo
                    else {
                        unreachable!("dispatched on kind");
                    };
                    compressors[rank] =
                        ErrorFeedbackTopK::with_ratio(self.fleet.n_params(), *compression);
                }
            }
            Kind::DPsgd => self.fleet.set_active(rank, active, 3)?,
            Kind::Dcd => {
                self.fleet.set_active(rank, active, 3)?;
                if active {
                    let AlgoState::Dcd { broadcast, .. } = &mut self.algo else {
                        unreachable!("dispatched on kind");
                    };
                    broadcast[rank] = self.fleet.worker(rank).flat();
                }
            }
            Kind::FedAvg | Kind::SFedAvg | Kind::Random => {
                self.fleet.set_active(rank, active, 2)?;
            }
        }
        Ok(())
    }

    fn export_checkpoint(&mut self) -> Result<Vec<u8>, ConfigError> {
        let flat = match &self.algo {
            AlgoState::Psgd | AlgoState::TopK { .. } => {
                let first = self.fleet.active_ranks()[0];
                self.fleet.worker(first).flat()
            }
            AlgoState::DPsgd | AlgoState::Dcd { .. } | AlgoState::Random { .. } => {
                self.fleet.average_model()
            }
            AlgoState::FedAvg { server_model, .. } | AlgoState::SFedAvg { server_model, .. } => {
                server_model.clone()
            }
        };
        Ok(checkpoint::encode(&flat, self.rounds).to_vec())
    }
}

/// Registers wire drivers for the seven baseline algorithms into `reg`,
/// each over its own loopback transport metered by a clone of `tap`.
/// Together with the SAPS registration in
/// [`crate::cluster_registry`] this covers every key the in-memory
/// [`saps_baselines::registry`] covers.
pub fn register_cluster_baselines(reg: &mut AlgorithmRegistry, tap: &WireTap) {
    fn build(
        kind: BaselineKind,
        ctx: BuildCtx<'_>,
        tap: &WireTap,
    ) -> Result<Box<dyn Trainer>, ConfigError> {
        let factory = ctx.factory.clone();
        let bw = ctx.bw;
        let trainer = BaselineClusterTrainer::loopback(
            kind,
            ctx.partitions,
            move |rng| factory(rng),
            ctx.seed,
            ctx.batch_size,
            ctx.lr,
            tap.clone(),
        )?
        // Chunk-serving peers rank by the experiment's bandwidth matrix,
        // the same snapshot peer selection plans over.
        .with_bandwidth(bw);
        Ok(Box::new(trainer))
    }

    let t = tap.clone();
    reg.register("psgd", move |spec, ctx| {
        let AlgorithmSpec::Psgd = *spec else {
            return Err(ConfigError::UnknownAlgorithm(spec.key().to_string()));
        };
        build(BaselineKind::Psgd, ctx, &t)
    });
    let t = tap.clone();
    reg.register("dpsgd", move |spec, ctx| {
        let AlgorithmSpec::DPsgd = *spec else {
            return Err(ConfigError::UnknownAlgorithm(spec.key().to_string()));
        };
        build(BaselineKind::DPsgd, ctx, &t)
    });
    let t = tap.clone();
    reg.register("dcd", move |spec, ctx| {
        let AlgorithmSpec::DcdPsgd { compression } = *spec else {
            return Err(ConfigError::UnknownAlgorithm(spec.key().to_string()));
        };
        build(BaselineKind::DcdPsgd { compression }, ctx, &t)
    });
    let t = tap.clone();
    reg.register("topk", move |spec, ctx| {
        let AlgorithmSpec::TopK { compression } = *spec else {
            return Err(ConfigError::UnknownAlgorithm(spec.key().to_string()));
        };
        build(BaselineKind::TopK { compression }, ctx, &t)
    });
    let t = tap.clone();
    reg.register("fedavg", move |spec, ctx| {
        let AlgorithmSpec::FedAvg {
            participation,
            local_steps,
        } = *spec
        else {
            return Err(ConfigError::UnknownAlgorithm(spec.key().to_string()));
        };
        build(
            BaselineKind::FedAvg {
                participation,
                local_steps,
            },
            ctx,
            &t,
        )
    });
    let t = tap.clone();
    reg.register("sfedavg", move |spec, ctx| {
        let AlgorithmSpec::SFedAvg {
            participation,
            local_steps,
            compression,
        } = *spec
        else {
            return Err(ConfigError::UnknownAlgorithm(spec.key().to_string()));
        };
        build(
            BaselineKind::SFedAvg {
                participation,
                local_steps,
                compression,
            },
            ctx,
            &t,
        )
    });
    let t = tap.clone();
    reg.register("random", move |spec, ctx| {
        let AlgorithmSpec::RandomChoose { compression } = *spec else {
            return Err(ConfigError::UnknownAlgorithm(spec.key().to_string()));
        };
        build(BaselineKind::RandomChoose { compression }, ctx, &t)
    });
}
