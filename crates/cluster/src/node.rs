//! The coordinator and worker event-loop state machines.
//!
//! Each node is a pure message processor: `handle(from, message)`
//! mutates local state and emits outgoing `(Addr, Message)` pairs, with
//! no knowledge of the transport underneath. That makes the round logic
//! transport-agnostic (loopback and TCP drive the identical machines)
//! and testable without any wiring.
//!
//! Both machines are thin shells over `saps-core`: the coordinator wraps
//! [`SapsControl`] (the same peer-selection/churn state the in-memory
//! trainer uses) and the worker wraps [`saps_core::Worker`] (the same
//! local-SGD/merge arithmetic) — so a message-driven round reproduces
//! the in-memory round bit for bit.

use crate::chunks::{ChunkManifest, ChunkOutcome, DownloadScheduler};
use crate::transport::Addr;
use crate::ClusterError;
use saps_compress::mask::RandomMask;
use saps_core::{checkpoint, SapsControl, Worker, WorkerState};
use saps_netsim::BandwidthMatrix;
use saps_proto::Message;
use std::collections::{BTreeMap, BTreeSet};

/// Outgoing messages a node emits while handling one input.
pub type Outbox = Vec<(Addr, Message)>;

/// What [`CoordinatorNode::start_round`] fixes for one round.
#[derive(Debug, Clone)]
pub struct RoundMeta {
    /// The round counter `t`.
    pub round: u64,
    /// The shared mask seed `s`.
    pub mask_seed: u64,
    /// Active ranks at round start, ascending.
    pub ranks: Vec<usize>,
    /// The matching as global-rank pairs, in plan order.
    pub pairs: Vec<(usize, usize)>,
}

/// In-flight state of one round at the coordinator.
#[derive(Debug)]
struct Inflight {
    round: u64,
    pending: BTreeSet<u32>,
    stats: BTreeMap<u32, (f32, f32)>,
}

/// Algorithm 1 as an event-loop state machine: broadcasts
/// [`Message::NotifyTrain`], waits for every active worker's
/// [`Message::RoundEnd`], and services churn / bandwidth / model-fetch
/// control frames.
#[derive(Debug)]
pub struct CoordinatorNode {
    control: SapsControl,
    inflight: Option<Inflight>,
    /// Checkpoints collected from `FinalModel` replies, by rank.
    collected: BTreeMap<u32, Vec<u8>>,
    /// Ranks with an outstanding `FetchModel`.
    awaiting_models: BTreeSet<u32>,
    /// Control frames successfully applied (join/leave/bandwidth) — a
    /// progress counter the driver waits on after sending one.
    control_epoch: u64,
    /// `FinalModel` frames that arrived with no outstanding
    /// `FetchModel` — a model reply racing the sender's own `Leave`.
    /// Dropped with this counter as the typed warning, never an error.
    late_models: u64,
    /// Checkpoint epochs published so far (stamps each manifest).
    checkpoint_epoch: u64,
    /// The manifest of the most recently published checkpoint epoch.
    manifest: Option<ChunkManifest>,
}

impl CoordinatorNode {
    /// Creates the coordinator over the initial bandwidth matrix.
    /// Parameters as in [`SapsControl::new`].
    pub fn new(bw: &BandwidthMatrix, bthres: Option<f64>, tthres: u32, seed: u64) -> Self {
        CoordinatorNode {
            control: SapsControl::new(bw, bthres, tthres, seed),
            inflight: None,
            collected: BTreeMap::new(),
            awaiting_models: BTreeSet::new(),
            control_epoch: 0,
            late_models: 0,
            checkpoint_epoch: 0,
            manifest: None,
        }
    }

    /// Sets the bandwidth-partition shard ceiling for round planning
    /// (see [`SapsControl::set_shard_size`]); `None` plans monolithic.
    pub fn set_shard_size(&mut self, shard_size: Option<usize>) {
        self.control.set_shard_size(shard_size);
    }

    /// Count of control frames (join/leave/bandwidth) applied so far.
    pub fn control_epoch(&self) -> u64 {
        self.control_epoch
    }

    /// Ranks of currently active workers, ascending.
    pub fn active_ranks(&self) -> Vec<usize> {
        self.control.active_ranks()
    }

    /// Fleet size `n` (inactive workers included).
    pub fn fleet_size(&self) -> usize {
        self.control.fleet_size()
    }

    /// Training rounds started so far (checkpoint exports stamp this).
    pub fn rounds_done(&self) -> u64 {
        self.control.rounds_done()
    }

    /// Begins a round: generates the plan over the active subset and
    /// emits one [`Message::NotifyTrain`] per active worker.
    pub fn start_round(&mut self, out: &mut Outbox) -> Result<RoundMeta, ClusterError> {
        if self.inflight.is_some() {
            return Err(ClusterError::Protocol(
                "start_round while a round is in flight".into(),
            ));
        }
        let ranks = self.control.active_ranks();
        let plan = self.control.begin_round();
        let pairs = self.control.global_pairs(&plan.matching);
        let matching: Vec<(u32, u32)> = pairs.iter().map(|&(a, b)| (a as u32, b as u32)).collect();
        for &rank in &ranks {
            out.push((
                Addr::Worker(rank as u32),
                Message::NotifyTrain {
                    round: plan.round,
                    mask_seed: plan.mask_seed,
                    matching: matching.clone(),
                },
            ));
        }
        self.inflight = Some(Inflight {
            round: plan.round,
            pending: ranks.iter().map(|&r| r as u32).collect(),
            stats: BTreeMap::new(),
        });
        Ok(RoundMeta {
            round: plan.round,
            mask_seed: plan.mask_seed,
            ranks,
            pairs,
        })
    }

    /// Whether every active worker has acknowledged the in-flight round.
    pub fn round_complete(&self) -> bool {
        self.inflight.as_ref().is_some_and(|f| f.pending.is_empty())
    }

    /// Abandons the in-flight round without closing it: discards the
    /// pending set and any stats already collected. Used by the
    /// trainer's byzantine recovery before replaying a round with the
    /// offender quarantined; a no-op when no round is in flight.
    pub fn abort_round(&mut self) {
        self.inflight = None;
    }

    /// Closes the completed round, returning per-worker `(loss, acc)`
    /// training statistics in ascending rank order — the order the
    /// in-memory trainer reduces them in.
    pub fn finish_round(&mut self) -> Result<Vec<(f32, f32)>, ClusterError> {
        match self.inflight.take() {
            Some(f) if f.pending.is_empty() => Ok(f.stats.into_values().collect()),
            Some(f) => {
                let stalled = f.round;
                self.inflight = Some(f);
                Err(ClusterError::Protocol(format!(
                    "round {stalled} still has workers pending"
                )))
            }
            None => Err(ClusterError::Protocol("no round in flight".into())),
        }
    }

    /// Emits a [`Message::FetchModel`] to each of `ranks`.
    pub fn request_models(&mut self, ranks: &[usize], out: &mut Outbox) {
        for &rank in ranks {
            self.awaiting_models.insert(rank as u32);
            out.push((
                Addr::Worker(rank as u32),
                Message::FetchModel { rank: rank as u32 },
            ));
        }
    }

    /// Whether every requested model has arrived.
    pub fn models_complete(&self) -> bool {
        self.awaiting_models.is_empty()
    }

    /// Takes the collected checkpoints, by rank.
    pub fn take_models(&mut self) -> BTreeMap<u32, Vec<u8>> {
        std::mem::take(&mut self.collected)
    }

    /// `FinalModel` frames dropped because no `FetchModel` was
    /// outstanding for the sender — a reply that raced the worker's own
    /// `Leave`. Nonzero is the typed churn-race warning.
    pub fn late_models(&self) -> u64 {
        self.late_models
    }

    /// Publishes `blob` as the next checkpoint epoch: builds the chunk
    /// manifest (fixed `chunk_size`-byte chunks, FNV-1a checksum each)
    /// and broadcasts [`Message::ManifestAnnounce`] to every active
    /// worker. Workers whose own encoded state matches the manifest
    /// become chunk sources for joiner catch-up.
    pub fn publish_manifest(
        &mut self,
        blob: &[u8],
        chunk_size: u32,
        round: u64,
        out: &mut Outbox,
    ) -> &ChunkManifest {
        self.checkpoint_epoch += 1;
        let manifest = ChunkManifest::build(self.checkpoint_epoch, round, blob, chunk_size);
        for rank in self.control.active_ranks() {
            out.push((Addr::Worker(rank as u32), manifest.announce()));
        }
        self.manifest = Some(manifest);
        self.manifest.as_ref().expect("manifest just published")
    }

    /// The most recently published checkpoint manifest, if any.
    pub fn manifest(&self) -> Option<&ChunkManifest> {
        self.manifest.as_ref()
    }

    /// Serving peers for `joiner`'s catch-up download, fastest first:
    /// every other active rank, ordered by descending bandwidth toward
    /// the joiner in the latest snapshot (ascending rank on ties).
    pub fn rank_peers(&self, joiner: usize) -> Vec<u32> {
        let bw = self.control.bandwidth_snapshot();
        let mut peers: Vec<usize> = self
            .control
            .active_ranks()
            .into_iter()
            .filter(|&r| r != joiner)
            .collect();
        peers.sort_by(|&a, &b| {
            bw.get(b, joiner)
                .partial_cmp(&bw.get(a, joiner))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        peers.into_iter().map(|r| r as u32).collect()
    }

    /// Handles one incoming message.
    pub fn handle(
        &mut self,
        from: Addr,
        msg: Message,
        _out: &mut Outbox,
    ) -> Result<(), ClusterError> {
        match msg {
            Message::RoundEnd {
                round,
                rank,
                loss,
                acc,
            } => {
                let inflight = self.inflight.as_mut().ok_or_else(|| {
                    ClusterError::Protocol(format!("RoundEnd({round}) with no round in flight"))
                })?;
                if round != inflight.round {
                    return Err(ClusterError::Protocol(format!(
                        "RoundEnd for round {round}, expected {}",
                        inflight.round
                    )));
                }
                if !inflight.pending.remove(&rank) {
                    return Err(ClusterError::Protocol(format!(
                        "duplicate or unexpected RoundEnd from rank {rank}"
                    )));
                }
                inflight.stats.insert(rank, (loss, acc));
                Ok(())
            }
            Message::FinalModel { rank, checkpoint } => {
                if !self.awaiting_models.remove(&rank) {
                    // A model reply that raced the worker's own Leave
                    // (or a retransmit): not a protocol violation, just
                    // late. Count it and drop the frame — erroring here
                    // used to kill the whole run on a routine churn race.
                    self.late_models += 1;
                    return Ok(());
                }
                self.collected.insert(rank, checkpoint);
                Ok(())
            }
            Message::Join { rank } => {
                self.control.set_active(rank as usize, true)?;
                self.control_epoch += 1;
                Ok(())
            }
            Message::Leave { rank } => {
                self.control.set_active(rank as usize, false)?;
                self.control_epoch += 1;
                // A leaving worker will never answer an outstanding
                // FetchModel; forget it so models_complete() can't stall
                // (its FinalModel, if already in flight, lands in the
                // late_models drop path above).
                self.awaiting_models.remove(&rank);
                Ok(())
            }
            Message::BandwidthReport { n, mbps } => {
                if n as usize != self.control.fleet_size() {
                    return Err(ClusterError::Protocol(format!(
                        "bandwidth report covers {n} workers, fleet has {}",
                        self.control.fleet_size()
                    )));
                }
                let bw = BandwidthMatrix::from_raw(n as usize, &mbps);
                self.control.refresh_bandwidth(&bw);
                self.control_epoch += 1;
                Ok(())
            }
            other => Err(ClusterError::Protocol(format!(
                "coordinator cannot handle {} from {from}",
                other.label()
            ))),
        }
    }
}

/// A point-in-time snapshot of a [`WorkerNode`]'s replayable state —
/// see [`WorkerNode::snapshot`]. Opaque: only good for handing back to
/// [`WorkerNode::restore`] on the node it came from.
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    state: WorkerState,
    rounds_done: u64,
    stash: Vec<(u32, u64, Vec<f32>)>,
}

/// Per-round state of a worker between `NotifyTrain` and its
/// `RoundEnd`.
#[derive(Debug)]
struct WorkerRound {
    round: u64,
    /// The peer this worker exchanges with, if matched.
    mate: Option<u32>,
    /// This round's local `(loss, acc)`.
    stats: (f32, f32),
}

/// Algorithm 2 as an event-loop state machine: on `NotifyTrain` run a
/// local SGD step, derive the shared mask, and send the masked payload
/// to the matched peer; on the peer's payload, merge and acknowledge
/// with `RoundEnd`; on `FetchModel`, reply with a checkpoint-encoded
/// `FinalModel`.
pub struct WorkerNode {
    worker: Worker,
    rank: u32,
    batch_size: usize,
    lr: f32,
    compression: f64,
    n_params: usize,
    mask: RandomMask,
    payload: Vec<f32>,
    round: Option<WorkerRound>,
    /// Payloads that arrived before their round's `NotifyTrain` (stream
    /// transports interleave senders arbitrarily).
    stash: Vec<(u32, u64, Vec<f32>)>,
    /// Rounds completed — stamped into `FinalModel` checkpoints.
    rounds_done: u64,
    shutdown: bool,
    /// The latest checkpoint manifest heard on the wire.
    manifest: Option<ChunkManifest>,
    /// The manifest epoch's blob, held only when this worker's own
    /// state matches the manifest bit-exactly — the proof it may serve
    /// chunks of the published epoch.
    epoch_blob: Option<Vec<u8>>,
    /// An in-progress catch-up download (joiners only).
    download: Option<DownloadScheduler>,
    /// Stats of the most recently *completed* download — the scheduler
    /// itself is consumed on completion, so telemetry reads this.
    last_download: Option<DownloadReport>,
}

/// Summary of a completed chunked catch-up download, kept after the
/// scheduler is consumed so the telemetry plane can report it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DownloadReport {
    /// Chunk retries the scheduler issued (idle re-requests plus
    /// re-sources after corrupt or failed chunks).
    pub retries: u64,
    /// Distinct peers that served accepted chunks.
    pub sources: u32,
}

impl std::fmt::Debug for WorkerNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerNode")
            .field("rank", &self.rank)
            .field("rounds_done", &self.rounds_done)
            .finish()
    }
}

impl WorkerNode {
    /// Wraps a core [`Worker`] as a protocol node.
    pub fn new(worker: Worker, batch_size: usize, lr: f32, compression: f64) -> Self {
        let rank = worker.rank() as u32;
        let n_params = worker.model().num_params();
        WorkerNode {
            worker,
            rank,
            batch_size,
            lr,
            compression,
            n_params,
            mask: RandomMask::from_indices(n_params, Vec::new()),
            payload: Vec::new(),
            round: None,
            stash: Vec::new(),
            rounds_done: 0,
            shutdown: false,
            manifest: None,
            epoch_blob: None,
            download: None,
            last_download: None,
        }
    }

    /// This worker's global rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Number of local training examples (round-report bookkeeping).
    pub fn data_len(&self) -> usize {
        self.worker.data_len()
    }

    /// The wrapped core worker (tests, conformance checks).
    pub fn worker(&self) -> &Worker {
        &self.worker
    }

    /// Whether a [`Message::Shutdown`] has been received.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown
    }

    /// Captures everything [`WorkerNode::restore`] needs to replay this
    /// node from the current instant: the core worker's parameters and
    /// batch RNG, the rounds-completed counter and any parked payloads.
    /// Taken between rounds (no round open) by the trainer's byzantine
    /// recovery.
    pub fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            state: self.worker.save_state(),
            rounds_done: self.rounds_done,
            stash: self.stash.clone(),
        }
    }

    /// Restores a [`WorkerNode::snapshot`]: the worker replays
    /// bit-identically from the captured instant. Any half-open round is
    /// abandoned (the trainer aborts the coordinator side to match).
    pub fn restore(&mut self, snap: &NodeSnapshot) {
        self.worker.rollback(&snap.state);
        self.rounds_done = snap.rounds_done;
        self.stash = snap.stash.clone();
        self.round = None;
    }

    /// The latest checkpoint manifest this worker has heard, if any.
    pub fn heard_manifest(&self) -> Option<&ChunkManifest> {
        self.manifest.as_ref()
    }

    /// Whether this worker can serve chunks of the published epoch (its
    /// own encoded state matched the manifest, or it finished a catch-up
    /// download of the epoch).
    pub fn can_serve_chunks(&self) -> bool {
        self.epoch_blob.is_some()
    }

    /// Starts a catch-up download of the heard manifest, fanning chunk
    /// requests across `peers` (ranked fastest first — see
    /// [`CoordinatorNode::rank_peers`]). The node answers incoming
    /// [`Message::ChunkData`] frames until the blob is complete, then
    /// installs the checkpoint parameters; `rounds_done` is *not*
    /// overwritten (it counts this worker's own completed rounds).
    pub fn begin_catch_up(
        &mut self,
        peers: Vec<u32>,
        out: &mut Outbox,
    ) -> Result<(), ClusterError> {
        let manifest = self.manifest.clone().ok_or_else(|| {
            ClusterError::Protocol(format!(
                "rank {}: catch-up without a published manifest",
                self.rank
            ))
        })?;
        if peers.is_empty() {
            return Err(ClusterError::Protocol(format!(
                "rank {}: catch-up with no serving peers",
                self.rank
            )));
        }
        let mut dl = DownloadScheduler::new(manifest, peers);
        Self::drain_requests(&mut dl, out);
        self.download = Some(dl);
        self.maybe_finish_download()
    }

    /// Whether a catch-up download is still in progress.
    pub fn catching_up(&self) -> bool {
        self.download.is_some()
    }

    /// The chunk that killed an in-progress download, if it died
    /// (sources exhausted). The download stays queryable until the
    /// driver surfaces [`ClusterError::ResyncFailed`] and retries.
    pub fn download_failed(&self) -> Option<u32> {
        self.download.as_ref().and_then(|d| d.failed_chunk())
    }

    /// Distinct peers that served accepted chunks of the in-progress
    /// download (test observability).
    pub fn download_sources(&self) -> BTreeSet<u32> {
        self.download
            .as_ref()
            .map(|d| d.sources())
            .unwrap_or_default()
    }

    /// Stats of the most recently completed catch-up download, if any.
    pub fn last_download(&self) -> Option<DownloadReport> {
        self.last_download
    }

    /// Re-requests every unanswered chunk of the in-progress download —
    /// the driver's idle-timeout path for dropped request or reply
    /// frames. Each retry rotates to the next ranked peer. No-op when
    /// no download is active.
    pub fn requeue_download(&mut self, out: &mut Outbox) {
        if let Some(dl) = self.download.as_mut() {
            dl.requeue_outstanding();
            Self::drain_requests(dl, out);
        }
    }

    /// Drops a disconnected peer from the in-progress download and
    /// re-sources its outstanding chunks.
    pub fn download_peer_lost(&mut self, peer: u32, out: &mut Outbox) {
        if let Some(dl) = self.download.as_mut() {
            dl.on_peer_lost(peer);
            Self::drain_requests(dl, out);
        }
    }

    fn drain_requests(dl: &mut DownloadScheduler, out: &mut Outbox) {
        while let Some((peer, req)) = dl.next_request() {
            out.push((Addr::Worker(peer), req));
        }
    }

    /// Installs the downloaded checkpoint once every chunk is verified:
    /// the assembled blob is bit-identical to the published one (each
    /// piece was checked against the manifest), so the installed
    /// parameters match the monolithic `FinalModel` path exactly.
    fn maybe_finish_download(&mut self) -> Result<(), ClusterError> {
        let done = self.download.as_ref().is_some_and(|d| d.is_complete());
        if !done {
            return Ok(());
        }
        let dl = self.download.take().expect("download present");
        self.last_download = Some(DownloadReport {
            retries: dl.retries(),
            sources: dl.sources().len() as u32,
        });
        let blob = dl.assemble().expect("complete download assembles");
        let (flat, _round) = checkpoint::decode(bytes::Bytes::from(blob.clone())).map_err(|e| {
            ClusterError::Protocol(format!(
                "rank {}: downloaded checkpoint failed to decode: {e}",
                self.rank
            ))
        })?;
        self.worker.set_flat(&flat);
        self.worker.model_mut().zero_grads();
        // Caught up bit-exactly: this worker is now a chunk source for
        // the same epoch (flash crowds snowball their own capacity).
        self.epoch_blob = Some(blob);
        Ok(())
    }

    /// Handles one incoming message, pushing any replies onto `out`.
    pub fn handle(
        &mut self,
        from: Addr,
        msg: Message,
        out: &mut Outbox,
    ) -> Result<(), ClusterError> {
        match msg {
            Message::NotifyTrain {
                round,
                mask_seed,
                matching,
            } => {
                if self.round.is_some() {
                    return Err(ClusterError::Protocol(format!(
                        "rank {}: NotifyTrain({round}) while a round is open",
                        self.rank
                    )));
                }
                // Algorithm 2 line 5: the local compute phase.
                let stats = self.worker.sgd_step(self.batch_size, self.lr);
                // Line 6: the shared-seed mask, identical on every worker.
                self.mask
                    .regenerate(self.n_params, self.compression, mask_seed, round);
                let mate = matching.iter().find_map(|&(a, b)| {
                    (a == self.rank)
                        .then_some(b)
                        .or_else(|| (b == self.rank).then_some(a))
                });
                self.round = Some(WorkerRound { round, mate, stats });
                match mate {
                    Some(peer) => {
                        // Line 7: ship the values-only payload to the peer.
                        let WorkerNode {
                            worker,
                            mask,
                            payload,
                            ..
                        } = self;
                        worker.sparse_payload_into(mask, payload);
                        out.push((
                            Addr::Worker(peer),
                            Message::MaskedPayload {
                                round,
                                values: payload.clone(),
                            },
                        ));
                        // A stream transport may already have delivered
                        // the peer's payload for this round.
                        if let Some(pos) = self
                            .stash
                            .iter()
                            .position(|&(p, r, _)| p == peer && r == round)
                        {
                            let (peer, round, values) = self.stash.remove(pos);
                            self.merge_and_ack(peer, round, &values, out)?;
                        }
                        Ok(())
                    }
                    None => {
                        // Unmatched this round: train only, acknowledge.
                        self.ack_round(out);
                        Ok(())
                    }
                }
            }
            Message::MaskedPayload { round, values } => {
                let from_rank = match from {
                    Addr::Worker(r) => r,
                    other => {
                        return Err(ClusterError::Protocol(format!(
                            "masked payload from non-worker address ({other})"
                        )))
                    }
                };
                match &self.round {
                    Some(st) if st.round == round && st.mate == Some(from_rank) => {
                        self.merge_and_ack(from_rank, round, &values, out)
                    }
                    // Not in that round yet — the NotifyTrain is still in
                    // flight. Park the payload.
                    Some(st) if round > st.round => self.stash_payload(from_rank, round, values),
                    None => self.stash_payload(from_rank, round, values),
                    Some(st) => Err(ClusterError::Protocol(format!(
                        "rank {}: payload for round {round} from {from_rank}, \
                         open round is {} with mate {:?}",
                        self.rank, st.round, st.mate
                    ))),
                }
            }
            Message::FetchModel { rank } => {
                if rank != self.rank {
                    return Err(ClusterError::Protocol(format!(
                        "FetchModel for rank {rank} delivered to rank {}",
                        self.rank
                    )));
                }
                let blob = checkpoint::encode(&self.worker.flat(), self.rounds_done);
                out.push((
                    Addr::Coordinator,
                    Message::FinalModel {
                        rank: self.rank,
                        checkpoint: blob.to_vec(),
                    },
                ));
                Ok(())
            }
            Message::ManifestAnnounce { .. } => {
                let manifest = ChunkManifest::from_announce(&msg).ok_or_else(|| {
                    ClusterError::Protocol(format!(
                        "rank {}: inconsistent manifest announce",
                        self.rank
                    ))
                })?;
                // Serve only what provably matches the publisher: a
                // worker whose own encoded state hashes to the manifest
                // holds the published blob bit-exactly.
                let own = checkpoint::encode(&self.worker.flat(), self.rounds_done);
                self.epoch_blob = manifest.matches(&own).then(|| own.to_vec());
                self.manifest = Some(manifest);
                Ok(())
            }
            Message::ChunkRequest { epoch, index } => {
                let reply = self
                    .manifest
                    .as_ref()
                    .filter(|m| m.epoch == epoch)
                    .zip(self.epoch_blob.as_ref())
                    .and_then(|(m, blob)| m.chunk_reply(blob, index))
                    // Can't serve (no matching epoch, diverged state, or
                    // an out-of-range index): NACK — empty data with
                    // checksum 0 never verifies, so the requester
                    // re-sources from its next ranked peer.
                    .unwrap_or(Message::ChunkData {
                        epoch,
                        index,
                        checksum: 0,
                        data: Vec::new(),
                    });
                out.push((from, reply));
                Ok(())
            }
            Message::ChunkData {
                epoch,
                index,
                checksum,
                data,
            } => {
                let from_rank = match from {
                    Addr::Worker(r) => r,
                    other => {
                        return Err(ClusterError::Protocol(format!(
                            "chunk data from non-worker address ({other})"
                        )))
                    }
                };
                let Some(dl) = self.download.as_mut() else {
                    // A late reply after the download completed (a
                    // retried chunk's slow first answer). Drop it.
                    return Ok(());
                };
                if dl.on_chunk(from_rank, epoch, index, checksum, &data) == ChunkOutcome::Rejected {
                    Self::drain_requests(dl, out);
                }
                self.maybe_finish_download()
            }
            Message::Shutdown => {
                self.shutdown = true;
                Ok(())
            }
            other => Err(ClusterError::Protocol(format!(
                "worker {} cannot handle {} from {from}",
                self.rank,
                other.label()
            ))),
        }
    }

    /// Parks a payload that overtook its round's `NotifyTrain`. At most
    /// one early payload (the open round's, from this worker's one mate)
    /// is legitimate at a time; a transport redelivering stale or
    /// duplicate payloads would otherwise grow the stash without bound,
    /// so overflow is a protocol error rather than silent accumulation.
    fn stash_payload(
        &mut self,
        from_rank: u32,
        round: u64,
        values: Vec<f32>,
    ) -> Result<(), ClusterError> {
        const STASH_LIMIT: usize = 4;
        if self.stash.len() >= STASH_LIMIT {
            return Err(ClusterError::Protocol(format!(
                "rank {}: payload stash overflow ({} parked) — stale or duplicate payloads",
                self.rank,
                self.stash.len()
            )));
        }
        self.stash.push((from_rank, round, values));
        Ok(())
    }

    /// Algorithm 2 lines 9–10: average the peer's payload into the local
    /// model on the masked coordinates, then acknowledge the round.
    fn merge_and_ack(
        &mut self,
        peer: u32,
        round: u64,
        values: &[f32],
        out: &mut Outbox,
    ) -> Result<(), ClusterError> {
        if values.len() != self.mask.nnz() {
            // The mask is derived from the shared seed, so a correct
            // peer cannot disagree on its size: a wrong-length payload
            // is provably the sender's fault, not a framing accident.
            return Err(ClusterError::Byzantine {
                rank: peer,
                detail: format!(
                    "payload for round {round} has {} values, mask keeps {}",
                    values.len(),
                    self.mask.nnz()
                ),
            });
        }
        self.worker.merge_sparse(&self.mask, values);
        self.ack_round(out);
        Ok(())
    }

    fn ack_round(&mut self, out: &mut Outbox) {
        let st = self.round.take().expect("ack with a round open");
        // Count, don't copy the plan counter: the coordinator's round
        // counter restarts at 0 whenever peer selection is rebuilt
        // (churn, bandwidth refresh), but "rounds this worker completed"
        // must keep monotonically increasing across rebuilds.
        self.rounds_done += 1;
        out.push((
            Addr::Coordinator,
            Message::RoundEnd {
                round: st.round,
                rank: self.rank,
                loss: st.stats.0,
                acc: st.stats.1,
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord(n: usize) -> CoordinatorNode {
        CoordinatorNode::new(&BandwidthMatrix::constant(n, 100.0), None, 10, 7)
    }

    #[test]
    fn final_model_racing_a_leave_is_dropped_not_fatal() {
        let mut c = coord(4);
        let mut out = Outbox::new();
        c.request_models(&[2], &mut out);
        assert!(!c.models_complete());
        // Rank 2's Leave lands before its FinalModel reply: the fetch is
        // forgotten so the collection can't stall...
        c.handle(Addr::Worker(2), Message::Leave { rank: 2 }, &mut out)
            .unwrap();
        assert!(c.models_complete());
        assert_eq!(c.late_models(), 0);
        // ...and the late reply is dropped with the typed counter, not
        // an error that kills the run.
        c.handle(
            Addr::Worker(2),
            Message::FinalModel {
                rank: 2,
                checkpoint: vec![1, 2, 3],
            },
            &mut out,
        )
        .unwrap();
        assert_eq!(c.late_models(), 1);
        assert!(c.take_models().is_empty());
    }

    #[test]
    fn solicited_final_model_is_still_collected() {
        let mut c = coord(3);
        let mut out = Outbox::new();
        c.request_models(&[0, 1], &mut out);
        for rank in [0u32, 1] {
            c.handle(
                Addr::Worker(rank),
                Message::FinalModel {
                    rank,
                    checkpoint: vec![rank as u8],
                },
                &mut out,
            )
            .unwrap();
        }
        assert!(c.models_complete());
        assert_eq!(c.late_models(), 0);
        assert_eq!(c.take_models().len(), 2);
    }

    #[test]
    fn peers_rank_by_bandwidth_toward_the_joiner() {
        let mut bw = BandwidthMatrix::constant(4, 10.0);
        bw.set(2, 0, 90.0);
        bw.set(3, 0, 40.0);
        bw.set(1, 0, 40.0);
        let c = CoordinatorNode::new(&bw, None, 10, 7);
        // Fastest toward rank 0 first; the 40 Mbps tie breaks ascending.
        assert_eq!(c.rank_peers(0), vec![2, 1, 3]);
    }

    #[test]
    fn publish_manifest_announces_to_every_active_worker() {
        let mut c = coord(3);
        let mut out = Outbox::new();
        let blob: Vec<u8> = (0..200u8).collect();
        let m = c.publish_manifest(&blob, 64, 5, &mut out).clone();
        assert_eq!(m.epoch, 1);
        assert_eq!(m.chunk_count(), 4);
        assert_eq!(out.len(), 3);
        assert!(out
            .iter()
            .all(|(_, msg)| matches!(msg, Message::ManifestAnnounce { epoch: 1, .. })));
        assert!(m.matches(&blob));
        // A second publish bumps the epoch.
        out.clear();
        let m2 = c.publish_manifest(&blob, 64, 6, &mut out).clone();
        assert_eq!(m2.epoch, 2);
    }
}
