//! End-to-end cluster run over real localhost TCP sockets (`--features
//! tcp`): the same rounds, through the same state machines, with frames
//! crossing the kernel — and still bit-identical to the loopback run.

#![cfg(feature = "tcp")]

use saps_cluster::tcp::TcpTransport;
use saps_cluster::{ClusterTrainer, WireTap};
use saps_core::{RoundCtx, SapsConfig, Trainer};
use saps_data::{partition, Dataset, SyntheticSpec};
use saps_netsim::{BandwidthMatrix, TrafficAccountant};
use saps_nn::zoo;
use saps_tensor::rng::{derive_seed, streams};

const SEED: u64 = 5;

fn parts(train: &Dataset, workers: usize) -> Vec<Dataset> {
    partition::iid(train, workers, derive_seed(SEED, 0, streams::DATA))
}

#[test]
fn tcp_cluster_matches_loopback_bit_for_bit() {
    let workers = 4;
    let train = SyntheticSpec::tiny().samples(800).generate(3);
    let bw = BandwidthMatrix::constant(workers, 1.0);
    let cfg = SapsConfig {
        workers,
        compression: 4.0,
        lr: 0.1,
        batch_size: 16,
        bthres: None,
        tthres: 4,
        seed: SEED,
        shard_size: None,
    };

    let loop_tap = WireTap::new();
    let mut over_loopback = ClusterTrainer::loopback(
        cfg.clone(),
        parts(&train, workers),
        &bw,
        |rng| zoo::mlp(&[16, 12, 4], rng),
        loop_tap.clone(),
    )
    .unwrap();

    let tcp_tap = WireTap::new();
    let transport = TcpTransport::for_cluster(workers, tcp_tap.clone()).unwrap();
    let mut over_tcp = ClusterTrainer::with_transport(
        cfg,
        parts(&train, workers),
        &bw,
        |rng| zoo::mlp(&[16, 12, 4], rng),
        transport,
        tcp_tap.clone(),
    )
    .unwrap();

    let mut t_loop = TrafficAccountant::new(workers);
    let mut t_tcp = TrafficAccountant::new(workers);
    for round in 0..4 {
        let a = {
            let mut ctx = RoundCtx::new(round, &bw, &mut t_loop, SEED);
            over_loopback.step(&mut ctx)
        };
        let b = {
            let mut ctx = RoundCtx::new(round, &bw, &mut t_tcp, SEED);
            over_tcp.step(&mut ctx)
        };
        assert_eq!(
            a.mean_loss.to_bits(),
            b.mean_loss.to_bits(),
            "round {round}"
        );
    }
    for r in 0..workers {
        assert_eq!(
            over_loopback.worker(r).worker().flat(),
            over_tcp.worker(r).worker().flat(),
            "worker {r}"
        );
        assert_eq!(t_loop.worker_total(r), t_tcp.worker_total(r));
    }
    // Identical frames crossed both transports.
    assert_eq!(loop_tap.snapshot(), tcp_tap.snapshot());
    over_tcp.shutdown().unwrap();
}
