//! Micro-benchmarks of the communication-path primitives: mask
//! generation, payload codecs, masked averaging, top-k selection.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use saps_compress::mask::RandomMask;
use saps_compress::topk::top_k_indices;
use saps_compress::{codec, quantize};

fn bench_mask_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("mask_generation");
    for &(n, ratio) in &[
        (1_000_000usize, 100.0f64),
        (1_000_000, 1000.0),
        (269_722, 100.0),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("N{n}_c{ratio}")),
            &(n, ratio),
            |b, &(n, ratio)| {
                let mut round = 0u64;
                b.iter(|| {
                    round += 1;
                    black_box(RandomMask::generate(n, ratio, 42, round))
                });
            },
        );
    }
    g.finish();
}

fn bench_mask_apply_and_merge(c: &mut Criterion) {
    let n = 1_000_000;
    let mask = RandomMask::generate(n, 100.0, 42, 1);
    let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let payload = mask.apply(&x);
    let mut g = c.benchmark_group("mask_exchange");
    g.bench_function("apply_1M_c100", |b| {
        b.iter(|| black_box(mask.apply(black_box(&x))))
    });
    g.bench_function("average_into_1M_c100", |b| {
        let mut y = x.clone();
        b.iter(|| {
            mask.average_into(&mut y, black_box(&payload));
        })
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let vals: Vec<f32> = (0..10_000).map(|i| i as f32 * 0.5).collect();
    let idx: Vec<u32> = (0..10_000u32).map(|i| i * 3).collect();
    let mut g = c.benchmark_group("codec");
    g.bench_function("encode_values_10k", |b| {
        b.iter(|| black_box(codec::encode_values(black_box(&vals))))
    });
    let encoded = codec::encode_values(&vals);
    g.bench_function("decode_values_10k", |b| {
        b.iter(|| black_box(codec::decode_values(encoded.clone())))
    });
    g.bench_function("encode_index_value_10k", |b| {
        b.iter(|| black_box(codec::encode_index_value(&idx, &vals)))
    });
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut g = c.benchmark_group("topk");
    for &n in &[100_000usize, 1_000_000] {
        let x: Vec<f32> = (0..n).map(|i| ((i * 2_654_435_761) % n) as f32).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(top_k_indices(black_box(&x), n / 1000)))
        });
    }
    g.finish();
}

fn bench_quantize(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let x: Vec<f32> = (0..100_000).map(|i| (i as f32).sin()).collect();
    c.bench_function("quantize_100k_4level", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(quantize::quantize(black_box(&x), 4, &mut rng)))
    });
}

criterion_group!(
    benches,
    bench_mask_generation,
    bench_mask_apply_and_merge,
    bench_codec,
    bench_topk,
    bench_quantize
);
criterion_main!(benches);
