//! Benchmarks of the spectral machinery: gossip-matrix construction,
//! mixing, and the deflated power-iteration estimate of ρ.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_gossip::{spectral, GossipMatrix};
use saps_graph::topology::random_perfect_matching;
use saps_tensor::Mat;

fn bench_gossip_matrix(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip_matrix");
    for &n in &[14usize, 32, 128] {
        g.bench_with_input(BenchmarkId::new("from_matching", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let m = random_perfect_matching(n - n % 2, &mut rng);
                black_box(GossipMatrix::from_matching(&m))
            })
        });
        g.bench_with_input(BenchmarkId::new("mix_row", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(2);
            let m = random_perfect_matching(n - n % 2, &mut rng);
            let w = GossipMatrix::from_matching(&m);
            let mut x: Vec<f64> = (0..w.len()).map(|i| i as f64).collect();
            b.iter(|| w.mix_row(black_box(&mut x)))
        });
    }
    g.finish();
}

fn bench_rho_estimation(c: &mut Criterion) {
    let mut g = c.benchmark_group("rho_estimation");
    g.sample_size(10);
    for &(n, rounds) in &[(14usize, 500usize), (32, 500)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_r{rounds}")),
            &(n, rounds),
            |b, &(n, rounds)| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(3);
                    black_box(spectral::estimate_rho(n, rounds, |_| {
                        GossipMatrix::from_matching(&random_perfect_matching(n, &mut rng))
                    }))
                })
            },
        );
    }
    g.finish();
}

fn bench_power_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("power_iteration");
    for &n in &[32usize, 128] {
        // A symmetric doubly-stochastic matrix (lazy ring walk).
        let mut w = Mat::zeros(n, n);
        for i in 0..n {
            w[(i, i)] = 0.5;
            w[(i, (i + 1) % n)] = 0.25;
            w[(i, (i + n - 1) % n)] = 0.25;
        }
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(w.second_eigenvalue_stochastic(500)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_gossip_matrix,
    bench_rho_estimation,
    bench_power_iteration
);
criterion_main!(benches);
