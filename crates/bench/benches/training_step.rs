//! End-to-end round benchmarks: one communication round of SAPS-PSGD vs
//! D-PSGD on the scaled workload, and one full-size single-model SGD
//! step for each Table II architecture.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_baselines::{DPsgd, Fleet};
use saps_core::{SapsConfig, SapsPsgd, Trainer};
use saps_data::SyntheticSpec;
use saps_netsim::{BandwidthMatrix, TrafficAccountant};
use saps_nn::zoo;

fn bench_round(c: &mut Criterion) {
    let n = 8;
    let ds = SyntheticSpec::tiny().samples(1_000).generate(1);
    let bw = BandwidthMatrix::constant(n, 1.0);
    let mut g = c.benchmark_group("round");
    g.sample_size(20);

    g.bench_function("saps_round_8workers", |b| {
        let cfg = SapsConfig {
            workers: n,
            compression: 10.0,
            lr: 0.1,
            batch_size: 16,
            tthres: 6,
            ..SapsConfig::default()
        };
        let mut algo =
            SapsPsgd::new(cfg, &ds, &bw, |rng| zoo::mlp(&[16, 32, 4], rng)).expect("bench config");
        let mut traffic = TrafficAccountant::new(n);
        b.iter(|| black_box(algo.round(&mut traffic, &bw)))
    });

    g.bench_function("dpsgd_round_8workers", |b| {
        let fleet =
            Fleet::new(n, &ds, |rng| zoo::mlp(&[16, 32, 4], rng), 1, 16, 0.1).expect("fleet");
        let mut algo = DPsgd::new(fleet).expect("ring");
        let mut traffic = TrafficAccountant::new(n);
        b.iter(|| black_box(algo.round(&mut traffic, &bw)))
    });
    g.finish();
}

fn bench_full_size_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_size_sgd_step");
    g.sample_size(10);

    g.bench_function("mnist_cnn_batch4", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = zoo::mnist_cnn(&mut rng);
        let ds = SyntheticSpec::mnist_like().samples(64).generate(1);
        let batch = ds.sample_batch(4, &mut rng);
        b.iter(|| black_box(model.train_step(&batch, 0.05)))
    });

    g.bench_function("resnet20_batch2", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = zoo::resnet20(&mut rng);
        let ds = SyntheticSpec::cifar10_like().samples(16).generate(1);
        let batch = ds.sample_batch(2, &mut rng);
        b.iter(|| black_box(model.train_step(&batch, 0.1)))
    });
    g.finish();
}

fn bench_flat_params(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let model = zoo::mnist_cnn(&mut rng);
    c.bench_function("flat_params_6.5M", |b| {
        b.iter(|| black_box(model.flat_params()))
    });
}

criterion_group!(
    benches,
    bench_round,
    bench_full_size_models,
    bench_flat_params
);
criterion_main!(benches);
