//! Benchmarks of the peer-selection path: blossom maximum matching and
//! the full Algorithm 3 round.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saps_core::GossipGenerator;
use saps_graph::{matching, topology, Graph};
use saps_netsim::BandwidthMatrix;

fn random_graph(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(i, j);
            }
        }
    }
    g
}

fn bench_blossom(c: &mut Criterion) {
    let mut g = c.benchmark_group("blossom_matching");
    for &n in &[14usize, 32, 64, 128] {
        let complete = topology::complete(n);
        g.bench_with_input(BenchmarkId::new("complete", n), &n, |b, _| {
            b.iter(|| black_box(matching::maximum_matching(&complete)))
        });
        let sparse = random_graph(n, 0.2, 1);
        g.bench_with_input(BenchmarkId::new("sparse_p0.2", n), &n, |b, _| {
            b.iter(|| black_box(matching::maximum_matching(&sparse)))
        });
    }
    g.finish();
}

fn bench_randomized_matching(c: &mut Criterion) {
    let g32 = topology::complete(32);
    c.bench_function("randomly_max_match_32", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(matching::randomly_max_match(&g32, &mut rng)))
    });
}

fn bench_algorithm3_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm3_round");
    for &n in &[14usize, 32, 64] {
        let mut rng = StdRng::seed_from_u64(3);
        let bw = BandwidthMatrix::uniform_random(n, 5.0, &mut rng);
        let thres = bw.percentile(0.6);
        let bstar = Graph::from_adjacency(n, &bw.threshold(thres));
        let full = Graph::from_threshold(n, bw.as_slice(), f64::MIN_POSITIVE);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut generator = GossipGenerator::new(bstar.clone(), full.clone(), 8);
            let mut rng = StdRng::seed_from_u64(4);
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                black_box(generator.next_matching(t, &mut rng))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_blossom,
    bench_randomized_matching,
    bench_algorithm3_round
);
criterion_main!(benches);
