//! The three scaled workloads standing in for the paper's Table II.

use rand::rngs::StdRng;
use saps_data::{Dataset, SyntheticSpec};
use saps_nn::{zoo, Model};

/// A scaled stand-in for one Table II row: model family, synthetic data
/// shaped like the paper's dataset, and training hyper-parameters.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name, e.g. `"MNIST-CNN (scaled)"`.
    pub name: &'static str,
    /// The paper's model this stands in for.
    pub paper_model: &'static str,
    /// The paper's parameter count for that model.
    pub paper_params: usize,
    /// Which zoo model to build (keyed for [`Workload::factory`]).
    model_key: &'static str,
    /// Synthetic dataset spec.
    spec: SyntheticSpec,
    /// Learning rate (Table II).
    pub lr: f32,
    /// Batch size (Table II, scaled).
    pub batch_size: usize,
    /// Default communication rounds for the convergence figures (safety
    /// cap; the epoch budget below usually stops the run first).
    pub default_rounds: usize,
    /// Epoch budget: Fig. 3 compares algorithms at equal epochs of local
    /// data processed, because FedAvg-style algorithms take several
    /// local steps per communication round.
    pub epochs: f64,
    /// Target validation accuracy for Table IV (scaled; the paper's
    /// absolute targets belong to real MNIST/CIFAR).
    pub target_acc: f32,
    /// Ratio by which compression settings are scaled down to stay
    /// meaningful at this model size (paper c=1000 needs N >> 1000).
    pub c_scale: f64,
}

impl Workload {
    /// MNIST-CNN stand-in: 10-class, 64-feature synthetic data on an MLP.
    pub fn mnist_scaled() -> Self {
        Workload {
            name: "MNIST-CNN (scaled)",
            paper_model: "MNIST-CNN",
            paper_params: 6_653_628,
            model_key: "mnist-mlp",
            spec: SyntheticSpec {
                feature_dim: 64,
                num_classes: 10,
                num_samples: 8_000,
                noise: 1.6,
                class_separation: 0.8,
                mixing_taps: 4,
            },
            lr: 0.05,
            batch_size: 50,
            default_rounds: 1_200,
            epochs: 60.0,
            target_acc: 0.80,
            c_scale: 10.0,
        }
    }

    /// CIFAR10-CNN stand-in: harder (noisier) 10-class data, wider MLP.
    pub fn cifar10_scaled() -> Self {
        Workload {
            name: "CIFAR10-CNN (scaled)",
            paper_model: "CIFAR10-CNN",
            paper_params: 7_025_886,
            model_key: "cifar-mlp",
            spec: SyntheticSpec {
                feature_dim: 128,
                num_classes: 10,
                num_samples: 8_000,
                noise: 2.6,
                class_separation: 0.7,
                mixing_taps: 6,
            },
            lr: 0.04,
            batch_size: 100,
            default_rounds: 1_200,
            epochs: 60.0,
            target_acc: 0.55,
            c_scale: 10.0,
        }
    }

    /// ResNet-20 stand-in: a small residual network on 16×16 synthetic
    /// images, 4 classes.
    pub fn resnet_scaled() -> Self {
        Workload {
            name: "ResNet-20 (scaled)",
            paper_model: "ResNet-20",
            paper_params: 269_722,
            model_key: "resnet-tiny",
            spec: SyntheticSpec {
                feature_dim: 256,
                num_classes: 4,
                num_samples: 3_000,
                noise: 2.2,
                class_separation: 0.8,
                mixing_taps: 4,
            },
            lr: 0.1,
            batch_size: 32,
            default_rounds: 400,
            epochs: 30.0,
            target_acc: 0.65,
            c_scale: 10.0,
        }
    }

    /// All three workloads in Table II order.
    pub fn all() -> Vec<Workload> {
        vec![
            Self::mnist_scaled(),
            Self::cifar10_scaled(),
            Self::resnet_scaled(),
        ]
    }

    /// Looks a workload up by CLI name (`mnist`, `cifar`, `resnet`).
    pub fn by_name(name: &str) -> Option<Workload> {
        match name {
            "mnist" => Some(Self::mnist_scaled()),
            "cifar" => Some(Self::cifar10_scaled()),
            "resnet" => Some(Self::resnet_scaled()),
            _ => None,
        }
    }

    /// The model constructor for this workload.
    pub fn factory(&self) -> fn(&mut StdRng) -> Model {
        match self.model_key {
            "mnist-mlp" => |rng| zoo::mlp(&[64, 128, 10], rng),
            "cifar-mlp" => |rng| zoo::mlp(&[128, 256, 128, 10], rng),
            "resnet-tiny" => |rng| zoo::resnet_tiny(rng),
            _ => unreachable!("unknown model key"),
        }
    }

    /// Generates the `(train, validation)` split for this workload.
    pub fn dataset(&self, seed: u64) -> (Dataset, Dataset) {
        self.spec.generate(seed).split(1.0 / 6.0, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn workloads_build_models_and_data() {
        for w in Workload::all() {
            let mut rng = StdRng::seed_from_u64(0);
            let m = (w.factory())(&mut rng);
            let (train, val) = w.dataset(1);
            assert_eq!(m.input_dim(), train.feature_dim(), "{}", w.name);
            assert!(!val.is_empty());
            assert!(train.len() > val.len());
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(Workload::by_name("mnist").is_some());
        assert!(Workload::by_name("cifar").is_some());
        assert!(Workload::by_name("resnet").is_some());
        assert!(Workload::by_name("imagenet").is_none());
    }
}
