//! Round-throughput recording: the perf trajectory's machine-readable
//! baseline.
//!
//! Every PR that touches the round engine needs a number to move, so
//! the runner binaries (`run_experiment` and `fig6_comm_time
//! --throughput`) record *rounds per wall-clock second* — algorithm,
//! workload, worker count and thread count included — into
//! `BENCH_round_throughput.json` in the working directory. The file is
//! plain JSON written by hand (no serde in the dependency-free build),
//! stable enough to diff across commits.

use saps_core::experiment::RunHistory;
use saps_core::ParallelismPolicy;
use std::io::{self, Write};
use std::path::Path;

/// Canonical output file name, written to the working directory.
pub const BENCH_FILE: &str = "BENCH_round_throughput.json";

/// One measured configuration: how fast the driver stepped rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputEntry {
    /// Algorithm name (paper spelling).
    pub algorithm: String,
    /// Workload display name.
    pub workload: String,
    /// Fleet size `n`.
    pub workers: usize,
    /// Resolved thread count of the run's [`ParallelismPolicy`].
    pub threads: usize,
    /// Execution driver: `"memory"` (in-memory trainer) or `"cluster"`
    /// (the message-driven `saps-cluster` runtime).
    pub driver: String,
    /// Whether the telemetry recorder was enabled for the run. Rows
    /// with and without it coexist, so the record carries the recorder
    /// overhead comparison (the target is < 5% rounds/s regression).
    pub telemetry: bool,
    /// Rounds actually driven.
    pub rounds: usize,
    /// Wall-clock seconds the driver spent ([`RunHistory::wall_time_s`]).
    pub wall_s: f64,
    /// `rounds / wall_s` — the headline number.
    pub rounds_per_sec: f64,
    /// Traffic the run moved, in MB. For cluster runs this is the bytes
    /// actually framed on the wire (all traffic classes); for in-memory
    /// runs it is the accountant's logical byte total
    /// ([`RunHistory::total_traffic_mb`]) — the same values-plus-control
    /// accounting the wire reconciles against, so memory rows are no
    /// longer recorded as a meaningless `0.000000`.
    pub wire_mb: f64,
}

impl ThroughputEntry {
    /// Builds an entry from a finished run (in-memory driver; see
    /// [`ThroughputEntry::with_driver`] for cluster runs).
    pub fn from_run(
        hist: &RunHistory,
        workload: &str,
        workers: usize,
        policy: ParallelismPolicy,
    ) -> Self {
        let rounds = hist.points.len();
        let wall = hist.wall_time_s.max(f64::MIN_POSITIVE);
        ThroughputEntry {
            algorithm: hist.algorithm.clone(),
            workload: workload.to_string(),
            workers,
            threads: policy.resolve(),
            driver: "memory".to_string(),
            telemetry: false,
            rounds,
            wall_s: hist.wall_time_s,
            rounds_per_sec: rounds as f64 / wall,
            wire_mb: hist.total_traffic_mb,
        }
    }

    /// Re-labels the entry with its execution driver and the on-wire
    /// megabytes its transport framed.
    pub fn with_driver(mut self, driver: &str, wire_mb: f64) -> Self {
        self.driver = driver.to_string();
        self.wire_mb = wire_mb;
        self
    }

    /// Marks whether the telemetry recorder ran during the measurement.
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }
}

/// Parses a `--threads` CLI value: `seq`, `auto`, or a thread count.
pub fn parse_policy(value: &str) -> Option<ParallelismPolicy> {
    match value {
        "seq" | "sequential" | "1" => Some(ParallelismPolicy::Sequential),
        "auto" => Some(ParallelismPolicy::Auto),
        n => n.parse().ok().map(ParallelismPolicy::Threads),
    }
}

/// Merges `new_entries` into the record at `path` and rewrites it:
/// an existing entry with the same `(algorithm, workload, workers,
/// threads)` key is replaced in place, everything else is kept, and new
/// configurations append. This is what the binaries call, so
/// `run_experiment` runs don't clobber the `fig6_comm_time
/// --throughput` acceptance record (or vice versa). A file in an
/// unrecognized format is rewritten from scratch.
pub fn record(path: &Path, new_entries: &[ThroughputEntry]) -> io::Result<()> {
    let mut entries = read_entries(path).unwrap_or_default();
    for ne in new_entries {
        match entries.iter_mut().find(|e| key(e) == key(ne)) {
            Some(slot) => *slot = ne.clone(),
            None => entries.push(ne.clone()),
        }
    }
    write_json(path, &entries)
}

fn key(e: &ThroughputEntry) -> (&str, &str, usize, usize, &str, bool) {
    (
        &e.algorithm,
        &e.workload,
        e.workers,
        e.threads,
        &e.driver,
        e.telemetry,
    )
}

/// Best-effort parse of a file this module wrote (one entry per line).
/// Returns `None` when the file is missing or any entry line does not
/// parse — callers start a fresh record in that case.
pub fn read_entries(path: &Path) -> Option<Vec<ThroughputEntry>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with("{\"algorithm\"") {
            continue;
        }
        out.push(parse_entry(line)?);
    }
    Some(out)
}

fn parse_entry(line: &str) -> Option<ThroughputEntry> {
    Some(ThroughputEntry {
        algorithm: field_str(line, "algorithm")?,
        workload: field_str(line, "workload")?,
        workers: field_num(line, "workers")?.parse().ok()?,
        threads: field_num(line, "threads")?.parse().ok()?,
        // Fields added after the first release: records written before
        // the cluster driver existed read as in-memory runs.
        driver: field_str(line, "driver").unwrap_or_else(|| "memory".to_string()),
        telemetry: field_num(line, "telemetry") == Some("true"),
        rounds: field_num(line, "rounds")?.parse().ok()?,
        wall_s: field_num(line, "wall_s")?.parse().ok()?,
        rounds_per_sec: field_num(line, "rounds_per_sec")?.parse().ok()?,
        wire_mb: field_num(line, "wire_mb")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0),
    })
}

/// Reads (and unescapes) the string value of `"name": "…"` in `line`.
fn field_str(line: &str, name: &str) -> Option<String> {
    let pat = format!("\"{name}\": \"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            c => out.push(c),
        }
    }
    None
}

/// Reads the numeric token of `"name": …` in `line`.
fn field_num<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("\"{name}\": ");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim())
}

/// Serializes entries to the JSON layout below and writes them to
/// `path` (atomically enough for a bench artifact: truncate + write).
///
/// ```json
/// {
///   "bench": "round_throughput",
///   "entries": [
///     {"algorithm": "SAPS-PSGD", "workload": "CIFAR10-CNN (scaled)",
///      "workers": 16, "threads": 4, "rounds": 30,
///      "wall_s": 1.234567, "rounds_per_sec": 24.3} ]
/// }
/// ```
pub fn write_json(path: &Path, entries: &[ThroughputEntry]) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    write!(f, "{}", render_json(entries))?;
    f.flush()
}

fn render_json(entries: &[ThroughputEntry]) -> String {
    let mut out = String::from("{\n  \"bench\": \"round_throughput\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"workload\": \"{}\", \"workers\": {}, \
             \"threads\": {}, \"driver\": \"{}\", \"telemetry\": {}, \"rounds\": {}, \
             \"wall_s\": {:.6}, \"rounds_per_sec\": {:.3}, \"wire_mb\": {:.6}}}{}\n",
            escape(&e.algorithm),
            escape(&e.workload),
            e.workers,
            e.threads,
            escape(&e.driver),
            e.telemetry,
            e.rounds,
            e.wall_s,
            e.rounds_per_sec,
            e.wire_mb,
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(threads: usize, rps: f64) -> ThroughputEntry {
        ThroughputEntry {
            algorithm: "SAPS-PSGD".into(),
            workload: "CIFAR10-CNN (scaled)".into(),
            workers: 16,
            threads,
            driver: "memory".into(),
            telemetry: false,
            rounds: 30,
            wall_s: 30.0 / rps,
            rounds_per_sec: rps,
            wire_mb: 0.0,
        }
    }

    #[test]
    fn json_layout_is_stable() {
        let text = render_json(&[entry(1, 10.0), entry(4, 25.0)]);
        assert!(text.starts_with("{\n  \"bench\": \"round_throughput\""));
        assert_eq!(text.matches("\"algorithm\": \"SAPS-PSGD\"").count(), 2);
        assert_eq!(
            text.matches("},\n").count(),
            1,
            "comma between entries only"
        );
        assert!(text.contains("\"threads\": 4"));
        assert!(text.ends_with("  ]\n}\n"));
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(parse_policy("seq"), Some(ParallelismPolicy::Sequential));
        assert_eq!(parse_policy("auto"), Some(ParallelismPolicy::Auto));
        assert_eq!(parse_policy("4"), Some(ParallelismPolicy::Threads(4)));
        assert_eq!(parse_policy("bogus"), None);
    }

    #[test]
    fn quotes_are_escaped() {
        let mut e = entry(1, 10.0);
        e.workload = "odd \"name\"".into();
        assert!(render_json(&[e]).contains("odd \\\"name\\\""));
    }

    #[test]
    fn record_roundtrips_and_merges_instead_of_clobbering() {
        let dir = std::env::temp_dir().join(format!("saps-throughput-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(BENCH_FILE);
        let _ = std::fs::remove_file(&path);

        // Values chosen so wall_s/rounds_per_sec survive the %.6/%.3
        // formatting exactly, making the roundtrip comparison strict.
        // Fresh file from the acceptance benchmark…
        record(&path, &[entry(1, 10.0), entry(4, 25.0)]).unwrap();
        // …then an unrelated run_experiment configuration must append…
        let mut other = entry(2, 15.0);
        other.algorithm = "D-PSGD".into();
        other.workload = "odd \"name\"".into();
        record(&path, &[other.clone()]).unwrap();
        // …and a re-measurement of an existing key must replace it.
        record(&path, &[entry(4, 12.0)]).unwrap();

        let got = read_entries(&path).unwrap();
        assert_eq!(got, vec![entry(1, 10.0), entry(4, 12.0), other]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cluster_and_memory_records_coexist() {
        let dir = std::env::temp_dir().join(format!("saps-throughput-drv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(BENCH_FILE);
        let _ = std::fs::remove_file(&path);

        // Same (algorithm, workload, workers, threads), different driver:
        // both records must survive side by side.
        let memory = entry(1, 10.0);
        let cluster = entry(1, 8.0).with_driver("cluster", 12.5);
        record(&path, std::slice::from_ref(&memory)).unwrap();
        record(&path, std::slice::from_ref(&cluster)).unwrap();
        let got = read_entries(&path).unwrap();
        assert_eq!(got, vec![memory, cluster.clone()]);
        // Re-measuring the cluster key replaces only the cluster record.
        // (7.5 rounds/s → wall 4.0 s survives the %.6 formatting exactly,
        // keeping the roundtrip comparison strict.)
        let faster = entry(1, 7.5).with_driver("cluster", 12.5);
        record(&path, std::slice::from_ref(&faster)).unwrap();
        let got = read_entries(&path).unwrap();
        assert_eq!(got, vec![entry(1, 10.0), faster]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn records_without_driver_fields_read_as_memory_runs() {
        // The pre-cluster file layout (no driver / wire_mb fields) must
        // keep parsing, so landing this feature doesn't wipe committed
        // benchmark history.
        let line = "    {\"algorithm\": \"SAPS-PSGD\", \"workload\": \"w\", \"workers\": 16, \
                    \"threads\": 2, \"rounds\": 30, \"wall_s\": 3.000000, \"rounds_per_sec\": 10.000}";
        let e = parse_entry(line.trim()).unwrap();
        assert_eq!(e.driver, "memory");
        assert_eq!(e.wire_mb, 0.0);
        assert_eq!(e.threads, 2);
    }

    #[test]
    fn telemetry_rows_coexist_and_legacy_lines_read_as_off() {
        let dir = std::env::temp_dir().join(format!("saps-throughput-tel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(BENCH_FILE);
        let _ = std::fs::remove_file(&path);

        // Same configuration with the recorder off and on: both rows
        // survive side by side — the overhead comparison needs the pair.
        let off = entry(1, 10.0);
        let on = entry(1, 15.0).with_telemetry(true);
        record(&path, &[off.clone(), on.clone()]).unwrap();
        assert_eq!(read_entries(&path).unwrap(), vec![off.clone(), on]);
        // Re-measuring the telemetry row replaces only it.
        let on2 = entry(1, 7.5).with_telemetry(true);
        record(&path, std::slice::from_ref(&on2)).unwrap();
        assert_eq!(read_entries(&path).unwrap(), vec![off, on2]);
        std::fs::remove_file(&path).unwrap();

        // Lines written before the flag existed read as recorder-off.
        let line = "{\"algorithm\": \"SAPS-PSGD\", \"workload\": \"w\", \"workers\": 16, \
                    \"threads\": 2, \"rounds\": 30, \"wall_s\": 3.000000, \"rounds_per_sec\": 10.000}";
        assert!(!parse_entry(line).unwrap().telemetry);
    }

    #[test]
    fn unrecognized_files_start_fresh() {
        let dir = std::env::temp_dir().join(format!("saps-throughput-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(BENCH_FILE);
        std::fs::write(&path, "{\"algorithm\" but not really json").unwrap();
        assert_eq!(read_entries(&path), None);
        record(&path, &[entry(1, 10.0)]).unwrap();
        assert_eq!(read_entries(&path).unwrap().len(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
