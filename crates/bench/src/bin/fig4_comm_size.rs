//! Fig. 4: validation accuracy vs per-worker communication size on 32
//! workers — the paper's headline traffic-efficiency figure.
//!
//! ```sh
//! cargo run -p saps-bench --release --bin fig4_comm_size [mnist|cifar|resnet] [rounds]
//! cargo run -p saps-bench --release --bin fig4_comm_size -- --sweep-c
//! ```
//!
//! `--sweep-c` runs the compression-ratio ablation instead: SAPS-PSGD at
//! c ∈ {2, 10, 50, 100} on the MNIST-scaled workload.

use saps_bench::{paper_lineup, run_algorithms, table, AlgorithmSpec, Workload};
use saps_netsim::BandwidthMatrix;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--sweep-c") {
        sweep_c();
        return;
    }
    let workloads: Vec<Workload> = match args.first().map(String::as_str) {
        Some(name) => vec![Workload::by_name(name).unwrap_or_else(|| {
            eprintln!("unknown workload {name}; use mnist|cifar|resnet");
            std::process::exit(2);
        })],
        None => Workload::all(),
    };
    let rounds_override: Option<usize> = args.get(1).map(|s| s.parse().expect("rounds"));
    let workers = 32;
    let bw = BandwidthMatrix::constant(workers, 1.0);

    for w in &workloads {
        let rounds = rounds_override.unwrap_or(w.default_rounds);
        let max_epochs = if rounds_override.is_some() {
            f64::INFINITY
        } else {
            w.epochs
        };
        println!(
            "\n=== Fig. 4: {} — accuracy vs per-worker communication size ===",
            w.name
        );
        let hists = run_algorithms(
            &paper_lineup(w.c_scale, Some(bw.percentile(0.6))),
            w,
            &bw,
            workers,
            42,
            |e| {
                e.rounds(rounds)
                    .eval_every((rounds / 20).max(1))
                    .eval_samples(1_000)
                    .max_epochs(max_epochs)
            },
        );
        for h in &hists {
            let series: Vec<(f64, f64)> = h
                .points
                .iter()
                .map(|p| (p.worker_traffic_mb, p.val_acc as f64 * 100.0))
                .collect();
            table::print_series(
                &format!("{} / {}", w.name, h.algorithm),
                "traffic [MB]",
                "top-1 val acc [%]",
                &table::downsample(&series, 12),
            );
        }
        // Paper-style summary: traffic to reach the target accuracy.
        println!(
            "\ntraffic to reach {:.0}% accuracy on {}:",
            w.target_acc * 100.0,
            w.name
        );
        for h in &hists {
            match h.first_reaching(w.target_acc) {
                Some(p) => println!(
                    "  {:12} {:>10.3} MB (round {})",
                    h.algorithm,
                    p.worker_traffic_mb,
                    p.round + 1
                ),
                None => println!(
                    "  {:12} did not reach target (final {:.1}%)",
                    h.algorithm,
                    h.final_acc * 100.0
                ),
            }
        }
    }
}

/// The compression-ratio ablation (DESIGN.md's `ablation_compression`).
fn sweep_c() {
    let w = Workload::mnist_scaled();
    let workers = 32;
    let bw = BandwidthMatrix::constant(workers, 1.0);
    println!(
        "=== Ablation: SAPS-PSGD compression ratio sweep ({}) ===",
        w.name
    );
    let kinds: Vec<AlgorithmSpec> = [2.0, 10.0, 50.0, 100.0]
        .iter()
        .map(|&c| AlgorithmSpec::Saps {
            compression: c,
            tthres: 8,
            bthres: Some(bw.percentile(0.6)),
        })
        .collect();
    let hists = run_algorithms(&kinds, &w, &bw, workers, 42, |e| {
        e.rounds(w.default_rounds)
            .eval_every((w.default_rounds / 20).max(1))
            .eval_samples(1_000)
    });
    let mut rows = Vec::new();
    for (kind, h) in kinds.iter().zip(&hists) {
        let c = kind.compression().expect("saps always has c");
        rows.push(vec![
            format!("{c}"),
            format!("{:.2}", h.final_acc * 100.0),
            format!("{:.4}", h.total_worker_traffic_mb),
            h.first_reaching(w.target_acc)
                .map(|p| format!("{:.4}", p.worker_traffic_mb))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    table::print_table(&["c", "final acc [%]", "total MB", "MB to target"], &rows);
}
