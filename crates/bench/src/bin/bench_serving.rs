//! Serving-plane benchmark: requests/second and latency percentiles for
//! the `saps-serve` inference fleet, plus the mixed training + serving
//! scenario where both planes share the Fig. 1 `citydata` bandwidth
//! matrix.
//!
//! ```sh
//! cargo run -p saps-bench --release --bin bench_serving -- \
//!     --replicas 2,4 --threads auto
//! ```
//!
//! Options:
//! * `--replicas A,B,…` — fleet sizes to sweep (default `2,4`)
//! * `--threads seq|auto|N` — executor width (results are bit-identical
//!   at any setting; only wall-clock moves)
//! * `--requests N` — requests per serve-only sweep point (default 4000)
//! * `--rounds N` — training rounds in the mixed scenario (default 10)
//! * `--smoke` — tiny volumes for CI (a few hundred requests, 3 rounds)
//! * `--telemetry <path>` — attach the `saps-telemetry` recorder to
//!   both scenarios and write the structured event trail to `<path>`
//!   (JSONL) plus a Prometheus-style metric snapshot to `<path>.prom`;
//!   tick-based latency percentiles, batch occupancy, and hot-swap
//!   latency land in the registry (`docs/OBSERVABILITY.md`). Results
//!   are bit-identical with or without it.
//!
//! Two scenarios land in `BENCH_serving.json`:
//!
//! 1. **serve-only** — per replica count: a Poisson request stream is
//!    submitted tick by tick and drained through the fleet; requests/s
//!    is completed requests over wall-clock time, latencies are
//!    wall-clock submit→completion.
//! 2. **mixed-training** — a cluster-driven SAPS-PSGD run on the
//!    14-city matrix exports its consensus every round; the fleet
//!    hot-swaps it while serving the same request stream. The round's
//!    *combined* training + serving transfers are priced on the shared
//!    matrix under the fluid (analytic) and packet-level time models.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_bench::serving::{self, ServingEntry, SERVING_FILE};
use saps_bench::throughput::parse_policy;
use saps_cluster::{cluster_registry, WireTap};
use saps_core::{checkpoint, AlgorithmSpec, Executor, Experiment, ParallelismPolicy, Recorder};
use saps_data::SyntheticSpec;
use saps_netsim::workload::{ArrivalProcess, RequestArrivals};
use saps_netsim::{citydata, to_mb, PacketConfig, TimeModel};
use saps_nn::zoo;
use saps_serve::{ReplicaNode, ServeCluster, ServePlacement};
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::Path;
use std::rc::Rc;
use std::time::Instant;

/// Model served by the serve-only sweep: a 32→64→10 MLP.
const DIMS: [usize; 3] = [32, 64, 10];
/// Model trained *and* served by the mixed scenario (must match, since
/// the fleet hot-swaps the trainer's consensus checkpoints).
const MIXED_DIMS: [usize; 3] = [16, 16, 4];
const CLIENTS: u32 = 4;

struct Args {
    replicas: Vec<usize>,
    threads: ParallelismPolicy,
    requests: usize,
    rounds: usize,
    smoke: bool,
    telemetry: Option<String>,
}

fn parse_args() -> Args {
    let mut a = Args {
        replicas: vec![2, 4],
        threads: ParallelismPolicy::Auto,
        requests: 4000,
        rounds: 10,
        smoke: false,
        telemetry: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--replicas" => {
                let v = it.next().expect("--replicas A,B,…");
                a.replicas = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("replica count"))
                    .collect();
            }
            "--threads" => {
                let v = it.next().expect("--threads seq|auto|N");
                a.threads = parse_policy(&v).expect("seq|auto|N");
            }
            "--requests" => {
                let v = it.next().expect("--requests N");
                a.requests = v.parse().expect("request count");
            }
            "--rounds" => {
                let v = it.next().expect("--rounds N");
                a.rounds = v.parse().expect("round count");
            }
            "--smoke" => a.smoke = true,
            "--telemetry" => a.telemetry = Some(it.next().expect("--telemetry <path>")),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if a.smoke {
        a.requests = a.requests.min(300);
        a.rounds = a.rounds.min(3);
    }
    assert!(!a.replicas.is_empty(), "need at least one replica count");
    a
}

fn fleet(n: usize, dims: &[usize], ckpt: &[u8], max_batch: usize) -> Vec<ReplicaNode> {
    (0..n as u32)
        .map(|id| {
            let mut rng = StdRng::seed_from_u64(11);
            ReplicaNode::new(id, zoo::mlp(dims, &mut rng), ckpt, max_batch).unwrap()
        })
        .collect()
}

/// Serve-only sweep point: a Poisson stream through `n` replicas.
fn serve_only(
    n: usize,
    requests: usize,
    threads: ParallelismPolicy,
    recorder: &Recorder,
) -> ServingEntry {
    let mut rng = StdRng::seed_from_u64(11);
    let ckpt = checkpoint::encode(&zoo::mlp(&DIMS, &mut rng).flat_params(), 0);
    let mut fleet = ServeCluster::loopback(fleet(n, &DIMS, &ckpt, 32))
        .unwrap()
        .with_executor(Executor::new(threads))
        .with_telemetry(recorder.clone());
    let mut arrivals = RequestArrivals::new(ArrivalProcess::Poisson { rate: 64.0 }, 5);

    let mut submitted_at: HashMap<u64, Instant> = HashMap::new();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(requests);
    let start = Instant::now();
    let mut submitted = 0usize;
    while submitted < requests {
        for _ in 0..arrivals.next_tick().min(requests - submitted) {
            let client = (submitted as u32) % CLIENTS;
            let id = fleet.submit(client, vec![0.1; DIMS[0]]).unwrap();
            submitted_at.insert(id, Instant::now());
            submitted += 1;
        }
        fleet.tick().unwrap();
        for c in fleet.take_completed() {
            let t0 = submitted_at.remove(&c.id).expect("submitted");
            latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        }
    }
    fleet.drain_in_flight(64).unwrap();
    for c in fleet.take_completed() {
        let t0 = submitted_at.remove(&c.id).expect("submitted");
        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let elapsed = start.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);

    let stats = fleet.stats();
    assert_eq!(stats.completed as usize, requests, "no request lost");
    ServingEntry {
        scenario: "serve-only".into(),
        replicas: n,
        threads: fleet_threads(threads),
        requests: latencies_ms.len(),
        requests_per_sec: latencies_ms.len() as f64 / elapsed,
        p50_ms: serving::quantile_ms(&mut latencies_ms, 0.5),
        p99_ms: serving::quantile_ms(&mut latencies_ms, 0.99),
        serve_mb: to_mb(fleet.tap().snapshot().serve_bytes),
        swaps: 0,
        fluid_round_s: 0.0,
        packet_round_s: 0.0,
    }
}

/// Mixed scenario: training + serving sharing the 14-city matrix.
fn mixed_training(
    replicas: usize,
    rounds: usize,
    threads: ParallelismPolicy,
    recorder: &Recorder,
) -> ServingEntry {
    let bw = citydata::fig1_bandwidth();
    let workers = bw.len();
    let ds = SyntheticSpec::tiny().samples(700).generate(1);
    let (train, val) = ds.split(0.25, 0);

    let mut rng = StdRng::seed_from_u64(11);
    let boot = checkpoint::encode(&zoo::mlp(&MIXED_DIMS, &mut rng).flat_params(), 0);
    let serve = Rc::new(RefCell::new(
        ServeCluster::loopback(fleet(replicas, &MIXED_DIMS, &boot, 32))
            .unwrap()
            .with_executor(Executor::new(threads))
            .with_telemetry(recorder.clone()),
    ));
    let arrivals = Rc::new(RefCell::new(RequestArrivals::new(
        ArrivalProcess::Diurnal {
            rate: 24.0,
            swing: 0.5,
            period: 8,
        },
        5,
    )));

    let submitted_at = Rc::new(RefCell::new(HashMap::<u64, Instant>::new()));
    let latencies_ms = Rc::new(RefCell::new(Vec::<f64>::new()));

    // Training spec: SAPS through the message-driven cluster runtime, so
    // the consensus the fleet swaps in crossed a real wire.
    let tap = WireTap::new();
    let (hook_fleet, hook_arr) = (Rc::clone(&serve), Rc::clone(&arrivals));
    let (hook_sub, hook_lat) = (Rc::clone(&submitted_at), Rc::clone(&latencies_ms));
    let mut total_submitted = 0u64;
    let start = Instant::now();
    let hist = Experiment::new(AlgorithmSpec::parse("saps").unwrap().with_compression(4.0))
        .train(train)
        .validation(val)
        .workers(workers)
        .batch_size(16)
        .bandwidth_matrix(bw.clone())
        .model(|rng| zoo::mlp(&MIXED_DIMS, rng))
        .rounds(rounds)
        .eval_every(rounds)
        .eval_samples(50)
        .telemetry(recorder.clone())
        .after_round(move |trainer, _point| {
            let ckpt = trainer.export_checkpoint().expect("cluster export");
            let mut fleet = hook_fleet.borrow_mut();
            fleet.announce(ckpt).unwrap();
            for _ in 0..hook_arr.borrow_mut().next_tick() {
                let client = (total_submitted as u32) % CLIENTS;
                let id = fleet.submit(client, vec![0.1; MIXED_DIMS[0]]).unwrap();
                hook_sub.borrow_mut().insert(id, Instant::now());
                total_submitted += 1;
            }
            fleet.tick().unwrap();
            for c in fleet.take_completed() {
                let t0 = hook_sub.borrow_mut().remove(&c.id).expect("submitted");
                hook_lat.borrow_mut().push(t0.elapsed().as_secs_f64() * 1e3);
            }
        })
        .run(&cluster_registry(tap.clone()))
        .unwrap();
    assert_eq!(hist.points.len(), rounds);

    let mut fleet = Rc::try_unwrap(serve).ok().expect("sole owner").into_inner();
    fleet.drain_in_flight(64).unwrap();
    for c in fleet.take_completed() {
        let t0 = submitted_at.borrow_mut().remove(&c.id).expect("submitted");
        latencies_ms
            .borrow_mut()
            .push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let elapsed = start.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);

    // Price one combined round on the shared matrix: the training run's
    // data-plane transfers plus the serving plane's, placed on the same
    // 14 physical nodes.
    let placement = ServePlacement { nodes: workers };
    let mut combined: Vec<(usize, usize, u64)> = tap
        .take_transfers()
        .into_iter()
        .map(|(src, dst, frame_bytes, _)| (src as usize, dst as usize, frame_bytes))
        .collect();
    combined.extend(placement.map(&fleet.take_transfers()));
    let fluid = TimeModel::Analytic.price_p2p(&bw, &combined, &[]);
    let packet = TimeModel::packet(PacketConfig::ideal().with_rtt(0.005).with_seed(7)).price_p2p(
        &bw,
        &combined,
        &[],
    );

    let stats = fleet.stats();
    let mut lat = latencies_ms.borrow_mut();
    assert_eq!(stats.completed, stats.submitted, "no request lost");
    assert!(
        fleet
            .replicas()
            .iter()
            .all(|r| r.model_version() == rounds as u64),
        "every replica must end on the final consensus"
    );
    ServingEntry {
        scenario: "mixed-training".into(),
        replicas,
        threads: fleet_threads(threads),
        requests: lat.len(),
        requests_per_sec: lat.len() as f64 / elapsed,
        p50_ms: serving::quantile_ms(&mut lat, 0.5),
        p99_ms: serving::quantile_ms(&mut lat, 0.99),
        serve_mb: to_mb(fleet.tap().snapshot().serve_bytes),
        swaps: stats.swaps,
        fluid_round_s: fluid.total_s,
        packet_round_s: packet.total_s,
    }
}

fn fleet_threads(policy: ParallelismPolicy) -> usize {
    Executor::new(policy).threads()
}

fn main() {
    let args = parse_args();
    let recorder = if args.telemetry.is_some() {
        Recorder::new()
    } else {
        Recorder::disabled()
    };
    let mut entries = Vec::new();
    for &n in &args.replicas {
        let e = serve_only(n, args.requests, args.threads, &recorder);
        println!(
            "serve-only      replicas={:2}  {:>9.1} req/s  p50 {:.3} ms  p99 {:.3} ms",
            e.replicas, e.requests_per_sec, e.p50_ms, e.p99_ms
        );
        entries.push(e);
    }
    let mixed = mixed_training(
        *args.replicas.last().unwrap(),
        args.rounds,
        args.threads,
        &recorder,
    );
    println!(
        "mixed-training  replicas={:2}  {:>9.1} req/s  p50 {:.3} ms  p99 {:.3} ms  \
         swaps {}  fluid {:.3} s  packet {:.3} s",
        mixed.replicas,
        mixed.requests_per_sec,
        mixed.p50_ms,
        mixed.p99_ms,
        mixed.swaps,
        mixed.fluid_round_s,
        mixed.packet_round_s
    );
    entries.push(mixed);
    serving::write_json(Path::new(SERVING_FILE), &entries).expect("write BENCH_serving.json");
    println!("wrote {SERVING_FILE}");
    if let Some(dest) = &args.telemetry {
        let q = |q| recorder.quantile("serve.latency_ticks", q).unwrap_or(0.0);
        println!(
            "telemetry: latency ticks p50 {:.2} | p90 {:.2} | p99 {:.2}  \
             batch occupancy {:.2}  swap latency ticks p50 {:.2}",
            q(0.50),
            q(0.90),
            q(0.99),
            recorder.gauge("serve.batch_occupancy").unwrap_or(0.0),
            recorder
                .quantile("serve.swap_latency_ticks", 0.50)
                .unwrap_or(0.0),
        );
        let path = Path::new(dest);
        let prom = path.with_extension(match path.extension().and_then(|e| e.to_str()) {
            Some(ext) => format!("{ext}.prom"),
            None => "prom".to_string(),
        });
        recorder.write_jsonl(path).expect("write telemetry JSONL");
        recorder
            .write_prometheus(&prom)
            .expect("write telemetry snapshot");
        println!(
            "telemetry written to {} and {}",
            path.display(),
            prom.display()
        );
    }
}
