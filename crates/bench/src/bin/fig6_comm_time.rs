//! Fig. 6: validation accuracy vs communication time with randomly
//! generated bandwidths for 32 workers.
//!
//! The same runs as Fig. 4, but charged against the (0, 5] MB/s random
//! bandwidth matrix through each algorithm's time model (pairwise
//! bottleneck for decentralized algorithms, best-server for FedAvg,
//! slowest ring link for all-reduce).
//!
//! ```sh
//! cargo run -p saps-bench --release --bin fig6_comm_time -- \
//!     [--time-model=analytic|des] [mnist|cifar|resnet] [rounds]
//! ```
//!
//! `--time-model=des` prices every round through the discrete-event
//! network simulator (5 ms per-link latency, fair-share contention —
//! see `docs/NETWORK_SIM.md`) instead of the closed-form analytic
//! formulas; losses and traffic are bit-identical between the two, so
//! the records are directly comparable. Either way the per-algorithm
//! numbers are merged into `BENCH_comm_time.json`, keyed by
//! `(algorithm, workload, workers, time_model)`.
//!
//! `--throughput [rounds]` instead runs the round-engine benchmark
//! behind the paper's headline wall-clock claim: SAPS-PSGD on the
//! CIFAR-style workload with 16 workers, once sequential and once on 4
//! threads, printing the speedup and recording both configurations to
//! `BENCH_round_throughput.json`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_bench::commtime::{self, CommTimeEntry};
use saps_bench::throughput::{self, ThroughputEntry};
use saps_bench::{
    experiment, paper_lineup, registry, run_algorithms, table, AlgorithmSpec, ParallelismPolicy,
    TimeModel, Workload,
};
use saps_netsim::BandwidthMatrix;
use std::path::Path;

/// Extracts `--time-model=NAME` / `--time-model NAME` from `args`
/// (both forms, matching `run_experiment`'s space-separated style).
fn parse_time_model(args: &mut Vec<String>) -> TimeModel {
    let mut model = TimeModel::Analytic;
    let mut resolve = |name: &str| match name {
        "analytic" => model = TimeModel::Analytic,
        "des" => {
            model = TimeModel::EventDriven {
                latency: commtime::DES_DEFAULT_LATENCY_S,
                contention: true,
            }
        }
        other => {
            eprintln!("unknown time model {other}; use --time-model=analytic|des");
            std::process::exit(2);
        }
    };
    let mut kept = Vec::with_capacity(args.len());
    let mut it = std::mem::take(args).into_iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--time-model=") {
            resolve(name);
        } else if a == "--time-model" {
            match it.next() {
                Some(name) => resolve(&name),
                None => {
                    eprintln!("missing value for --time-model (analytic|des)");
                    std::process::exit(2);
                }
            }
        } else {
            kept.push(a);
        }
    }
    *args = kept;
    model
}

/// Sequential vs 4-thread round throughput of SAPS-PSGD on the
/// 16-worker CIFAR-style workload (the acceptance workload for the
/// parallel round engine).
fn throughput_bench(rounds: usize) {
    let w = Workload::cifar10_scaled();
    let workers = 16;
    let mut rng = StdRng::seed_from_u64(7);
    let bw = BandwidthMatrix::uniform_random(workers, 5.0, &mut rng);
    let spec = AlgorithmSpec::Saps {
        compression: (100.0 / w.c_scale).max(1.0),
        tthres: 8,
        bthres: Some(bw.percentile(0.6)),
    };
    let reg = registry();
    println!(
        "=== round throughput: {} on {}, {} workers, {} rounds ===",
        spec.label(),
        w.name,
        workers,
        rounds
    );
    let mut entries: Vec<ThroughputEntry> = Vec::new();
    for policy in [ParallelismPolicy::Sequential, ParallelismPolicy::Threads(4)] {
        let hist = experiment(spec, &w, &bw, workers, 42)
            .rounds(rounds)
            .eval_every(rounds)
            .eval_samples(200)
            .parallelism(policy)
            .run(&reg)
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
        let entry = ThroughputEntry::from_run(&hist, w.name, workers, policy);
        println!(
            "  {:>2} thread(s): {:>8.2} rounds/s ({:.3} s wall)",
            entry.threads, entry.rounds_per_sec, entry.wall_s
        );
        entries.push(entry);
    }
    let speedup = entries[1].rounds_per_sec / entries[0].rounds_per_sec;
    println!("  speedup at 4 threads vs sequential: {speedup:.2}x");
    let path = Path::new(throughput::BENCH_FILE);
    match throughput::record(path, &entries) {
        Ok(()) => println!("  recorded to {}", path.display()),
        Err(e) => eprintln!("  warning: could not write {}: {e}", path.display()),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let time_model = parse_time_model(&mut args);
    if args.first().map(String::as_str) == Some("--throughput") {
        let rounds = args
            .get(1)
            .map(|s| s.parse().expect("rounds"))
            .unwrap_or(30);
        throughput_bench(rounds);
        return;
    }
    let workloads: Vec<Workload> = match args.first().map(String::as_str) {
        Some(name) => vec![Workload::by_name(name).unwrap_or_else(|| {
            eprintln!("unknown workload {name}; use mnist|cifar|resnet");
            std::process::exit(2);
        })],
        None => Workload::all(),
    };
    let rounds_override: Option<usize> = args.get(1).map(|s| s.parse().expect("rounds"));
    let workers = 32;
    let mut rng = StdRng::seed_from_u64(7);
    let bw = BandwidthMatrix::uniform_random(workers, 5.0, &mut rng);

    for w in &workloads {
        let rounds = rounds_override.unwrap_or(w.default_rounds);
        let max_epochs = if rounds_override.is_some() {
            f64::INFINITY
        } else {
            w.epochs
        };
        println!(
            "\n=== Fig. 6: {} — accuracy vs communication time [{}] ===",
            w.name,
            time_model.label()
        );
        let hists = run_algorithms(
            &paper_lineup(w.c_scale, Some(bw.percentile(0.6))),
            w,
            &bw,
            workers,
            42,
            |e| {
                e.rounds(rounds)
                    .eval_every((rounds / 20).max(1))
                    .eval_samples(1_000)
                    .max_epochs(max_epochs)
                    .time_model(time_model)
            },
        );
        for h in &hists {
            let series: Vec<(f64, f64)> = h
                .points
                .iter()
                .map(|p| (p.comm_time_s, p.val_acc as f64 * 100.0))
                .collect();
            table::print_series(
                &format!("{} / {}", w.name, h.algorithm),
                "comm time [s]",
                "top-1 val acc [%]",
                &table::downsample(&series, 12),
            );
        }
        println!(
            "\ncommunication time to reach {:.0}% accuracy on {}:",
            w.target_acc * 100.0,
            w.name
        );
        for h in &hists {
            match h.first_reaching(w.target_acc) {
                Some(p) => println!("  {:12} {:>12.2} s", h.algorithm, p.comm_time_s),
                None => println!(
                    "  {:12} did not reach target (final {:.1}%)",
                    h.algorithm,
                    h.final_acc * 100.0
                ),
            }
        }

        let entries: Vec<CommTimeEntry> = hists
            .iter()
            .map(|h| CommTimeEntry::from_run(h, w.name, workers, time_model.label(), w.target_acc))
            .collect();
        let path = Path::new(commtime::BENCH_FILE);
        match commtime::record(path, &entries) {
            Ok(()) => println!("recorded {} entries to {}", entries.len(), path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}
