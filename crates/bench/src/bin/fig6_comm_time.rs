//! Fig. 6: validation accuracy vs communication time with randomly
//! generated bandwidths for 32 workers.
//!
//! The same runs as Fig. 4, but charged against the (0, 5] MB/s random
//! bandwidth matrix through each algorithm's time model (pairwise
//! bottleneck for decentralized algorithms, best-server for FedAvg,
//! slowest ring link for all-reduce).
//!
//! ```sh
//! cargo run -p saps-bench --release --bin fig6_comm_time [mnist|cifar|resnet] [rounds]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_bench::{paper_lineup, run_algorithms, table, Workload};
use saps_netsim::BandwidthMatrix;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workloads: Vec<Workload> = match args.first().map(String::as_str) {
        Some(name) => vec![Workload::by_name(name).unwrap_or_else(|| {
            eprintln!("unknown workload {name}; use mnist|cifar|resnet");
            std::process::exit(2);
        })],
        None => Workload::all(),
    };
    let rounds_override: Option<usize> = args.get(1).map(|s| s.parse().expect("rounds"));
    let workers = 32;
    let mut rng = StdRng::seed_from_u64(7);
    let bw = BandwidthMatrix::uniform_random(workers, 5.0, &mut rng);

    for w in &workloads {
        let rounds = rounds_override.unwrap_or(w.default_rounds);
        let max_epochs = if rounds_override.is_some() {
            f64::INFINITY
        } else {
            w.epochs
        };
        println!(
            "\n=== Fig. 6: {} — accuracy vs communication time ===",
            w.name
        );
        let hists = run_algorithms(
            &paper_lineup(w.c_scale, Some(bw.percentile(0.6))),
            w,
            &bw,
            workers,
            42,
            |e| {
                e.rounds(rounds)
                    .eval_every((rounds / 20).max(1))
                    .eval_samples(1_000)
                    .max_epochs(max_epochs)
            },
        );
        for h in &hists {
            let series: Vec<(f64, f64)> = h
                .points
                .iter()
                .map(|p| (p.comm_time_s, p.val_acc as f64 * 100.0))
                .collect();
            table::print_series(
                &format!("{} / {}", w.name, h.algorithm),
                "comm time [s]",
                "top-1 val acc [%]",
                &table::downsample(&series, 12),
            );
        }
        println!(
            "\ncommunication time to reach {:.0}% accuracy on {}:",
            w.target_acc * 100.0,
            w.name
        );
        for h in &hists {
            match h.first_reaching(w.target_acc) {
                Some(p) => println!("  {:12} {:>12.2} s", h.algorithm, p.comm_time_s),
                None => println!(
                    "  {:12} did not reach target (final {:.1}%)",
                    h.algorithm,
                    h.final_acc * 100.0
                ),
            }
        }
    }
}
