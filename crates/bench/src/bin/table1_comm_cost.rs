//! Table I: communication cost comparison of different algorithms.
//!
//! Prints the analytic per-server / per-worker costs for the paper's
//! setting (N from Table II, n = 32, per-algorithm c, T = 1000 rounds)
//! and the feature flags (sparsification / client bandwidth / robustness).
//!
//! ```sh
//! cargo run -p saps-bench --release --bin table1_comm_cost
//! ```

use saps_bench::table;
use saps_core::complexity::{table1, CostParams};

fn main() {
    let params = CostParams {
        n_params: 6_653_628.0, // MNIST-CNN of Table II
        workers: 32.0,
        compression: 100.0,
        rounds: 1_000.0,
        neighbors: 2.0,
    };
    println!(
        "=== Table I: communication cost (parameters moved; N = {}, n = {}, c = {}, T = {}, np = {}) ===\n",
        table::thousands(params.n_params),
        params.workers,
        params.compression,
        params.rounds,
        params.neighbors
    );

    let rows = table1(params);
    let fmt_flag = |b: bool| if b { "yes" } else { "no" }.to_string();
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.to_string(),
                r.server.map(table::thousands).unwrap_or_else(|| "-".into()),
                table::thousands(r.worker),
                fmt_flag(r.sparsification),
                fmt_flag(r.considers_bandwidth),
                fmt_flag(r.robust),
            ]
        })
        .collect();
    table::print_table(
        &[
            "Algorithm",
            "Server Cost",
            "Worker Cost",
            "SP.",
            "C.B.",
            "R.",
        ],
        &data,
    );

    let saps = rows.iter().find(|r| r.algorithm == "SAPS-PSGD").unwrap();
    println!("\nworker-cost ratios over SAPS-PSGD:");
    for r in &rows {
        if r.algorithm != "SAPS-PSGD" {
            println!("  {:18} {:>10.1}x", r.algorithm, r.worker / saps.worker);
        }
    }
}
