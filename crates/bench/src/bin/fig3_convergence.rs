//! Fig. 3 + Table III: convergence of all seven algorithms vs epochs, and
//! final top-1 validation accuracy, on 32 workers.
//!
//! ```sh
//! cargo run -p saps-bench --release --bin fig3_convergence [mnist|cifar|resnet] [rounds]
//! ```
//!
//! With no arguments runs all three workloads at their default round
//! budgets (several minutes in release mode).

use saps_bench::{paper_lineup, run_algorithms, table, Workload};
use saps_netsim::BandwidthMatrix;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workloads: Vec<Workload> = match args.first().map(String::as_str) {
        Some(name) => vec![Workload::by_name(name).unwrap_or_else(|| {
            eprintln!("unknown workload {name}; use mnist|cifar|resnet");
            std::process::exit(2);
        })],
        None => Workload::all(),
    };
    let rounds_override: Option<usize> = args.get(1).map(|s| s.parse().expect("rounds"));
    let workers = 32;
    // Fig. 3 is convergence vs epochs "without considering the network
    // bandwidth" — any constant matrix works.
    let bw = BandwidthMatrix::constant(workers, 1.0);

    let mut table3: Vec<Vec<String>> = Vec::new();
    for w in &workloads {
        let rounds = rounds_override.unwrap_or(w.default_rounds);
        let max_epochs = if rounds_override.is_some() {
            f64::INFINITY
        } else {
            w.epochs
        };
        println!(
            "\n=== Fig. 3: {} — {} workers, {} epochs (round cap {}) ===",
            w.name, workers, w.epochs, rounds
        );
        let hists = run_algorithms(
            &paper_lineup(w.c_scale, Some(bw.percentile(0.6))),
            w,
            &bw,
            workers,
            42,
            |e| {
                e.rounds(rounds)
                    .eval_every((rounds / 20).max(1))
                    .eval_samples(1_000)
                    .max_epochs(max_epochs)
            },
        );
        for h in &hists {
            let series: Vec<(f64, f64)> = h
                .points
                .iter()
                .map(|p| (p.epoch, p.val_acc as f64 * 100.0))
                .collect();
            table::print_series(
                &format!("{} / {}", w.name, h.algorithm),
                "epoch",
                "top-1 val acc [%]",
                &table::downsample(&series, 12),
            );
        }
        for h in &hists {
            table3.push(vec![
                h.algorithm.clone(),
                w.name.to_string(),
                format!("{:.2}", h.final_acc * 100.0),
            ]);
        }
    }

    println!("\n=== Table III: final top-1 validation accuracy (%) ===\n");
    table::print_table(&["Algorithm", "Workload", "Accuracy"], &table3);
    println!(
        "\nNote: absolute accuracies belong to the synthetic stand-in datasets \
         (DESIGN.md §6); compare *orderings* with the paper's Table III."
    );
}
