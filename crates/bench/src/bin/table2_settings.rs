//! Table II: experimental settings.
//!
//! Prints the paper's three models with their published parameter counts
//! next to our full-size reconstructions' counts, plus the scaled
//! workloads the convergence benches actually train (DESIGN.md §6).
//!
//! ```sh
//! cargo run -p saps-bench --release --bin table2_settings
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_bench::{table, Workload};
use saps_nn::zoo;

fn main() {
    println!("=== Table II: experimental settings ===\n");
    let mut rng = StdRng::seed_from_u64(0);
    let full_size: Vec<(&str, usize, usize, usize, f32, usize)> = vec![
        (
            "MNIST-CNN",
            zoo::mnist_cnn(&mut rng).num_params(),
            6_653_628,
            50,
            0.05,
            100,
        ),
        (
            "CIFAR10-CNN",
            zoo::cifar10_cnn(&mut rng).num_params(),
            7_025_886,
            100,
            0.04,
            320,
        ),
        (
            "ResNet-20",
            zoo::resnet20(&mut rng).num_params(),
            269_722,
            64,
            0.1,
            160,
        ),
    ];
    let rows: Vec<Vec<String>> = full_size
        .iter()
        .map(|(name, ours, paper, batch, lr, epochs)| {
            vec![
                name.to_string(),
                table::thousands(*ours as f64),
                table::thousands(*paper as f64),
                format!("{:+.1}%", (*ours as f64 / *paper as f64 - 1.0) * 100.0),
                batch.to_string(),
                format!("{lr}"),
                epochs.to_string(),
            ]
        })
        .collect();
    table::print_table(
        &[
            "Model",
            "# Params (ours)",
            "# Params (paper)",
            "delta",
            "Batch Size",
            "LR",
            "# Epochs",
        ],
        &rows,
    );

    println!("\n=== Scaled workloads used by the convergence benches ===\n");
    let rows: Vec<Vec<String>> = Workload::all()
        .iter()
        .map(|w| {
            let mut rng = StdRng::seed_from_u64(0);
            let params = (w.factory())(&mut rng).num_params();
            vec![
                w.name.to_string(),
                w.paper_model.to_string(),
                table::thousands(params as f64),
                w.batch_size.to_string(),
                format!("{}", w.lr),
                w.default_rounds.to_string(),
                format!("{:.0}%", w.target_acc * 100.0),
            ]
        })
        .collect();
    table::print_table(
        &[
            "Workload",
            "stands in for",
            "# Params",
            "Batch",
            "LR",
            "Rounds",
            "Target Acc",
        ],
        &rows,
    );
    println!(
        "\nfull-size architectures are exercised by unit tests and the training_step \
         criterion bench; convergence curves use the scaled workloads (DESIGN.md §6)."
    );
}
