//! Fig. 1: network speeds between virtual machines located at 14 cities.
//!
//! Prints the embedded measurement matrix (Mbit/s), the symmetrized MB/s
//! matrix the algorithms consume, and the summary statistics that
//! motivate adaptive peer selection.
//!
//! ```sh
//! cargo run -p saps-bench --release --bin fig1_bandwidth_matrix
//! ```

use saps_bench::table;
use saps_netsim::citydata::{fig1_bandwidth, CITY_NAMES, FIG1_MBITS, NUM_CITIES};

fn main() {
    println!("=== Fig. 1: inter-VM network speeds (Mbit/s, raw, row -> column) ===\n");
    let short: Vec<String> = CITY_NAMES
        .iter()
        .map(|n| n.chars().take(9).collect())
        .collect();
    let mut headers: Vec<&str> = vec!["from \\ to"];
    headers.extend(short.iter().map(String::as_str));
    let mut rows = Vec::new();
    for i in 0..NUM_CITIES {
        let mut row = vec![short[i].clone()];
        for j in 0..NUM_CITIES {
            let v = FIG1_MBITS[i * NUM_CITIES + j];
            row.push(if v.is_nan() {
                "-".into()
            } else {
                format!("{v:.1}")
            });
        }
        rows.push(row);
    }
    table::print_table(&headers, &rows);

    let bw = fig1_bandwidth();
    println!("\n=== Symmetrized bottleneck bandwidths (MB/s) ===");
    println!("mean pair bandwidth:        {:.3} MB/s", bw.mean());
    println!("median pair bandwidth:      {:.3} MB/s", bw.percentile(0.5));
    println!("90th percentile:            {:.3} MB/s", bw.percentile(0.9));
    println!("10th percentile:            {:.3} MB/s", bw.percentile(0.1));
    println!(
        "largest connected threshold: {:.3} MB/s",
        bw.max_connecting_threshold()
    );
    println!(
        "best-connected node (FedAvg server placement): {}",
        CITY_NAMES[bw.best_server()]
    );

    // The observation the paper draws from this figure.
    let fastest = (0..NUM_CITIES)
        .flat_map(|i| (0..NUM_CITIES).map(move |j| (i, j)))
        .filter(|&(i, j)| i != j)
        .max_by(|a, b| bw.get(a.0, a.1).partial_cmp(&bw.get(b.0, b.1)).unwrap())
        .unwrap();
    let slowest = (0..NUM_CITIES)
        .flat_map(|i| (0..NUM_CITIES).map(move |j| (i, j)))
        .filter(|&(i, j)| i != j)
        .min_by(|a, b| bw.get(a.0, a.1).partial_cmp(&bw.get(b.0, b.1)).unwrap())
        .unwrap();
    println!(
        "\nbandwidth diversity: fastest pair {} <-> {} at {:.2} MB/s is {:.0}x the slowest \
         pair {} <-> {} at {:.4} MB/s",
        CITY_NAMES[fastest.0],
        CITY_NAMES[fastest.1],
        bw.get(fastest.0, fastest.1),
        bw.get(fastest.0, fastest.1) / bw.get(slowest.0, slowest.1),
        CITY_NAMES[slowest.0],
        CITY_NAMES[slowest.1],
        bw.get(slowest.0, slowest.1),
    );
}
