//! General experiment runner: one algorithm, one workload, CSV output.
//!
//! The figure/table binaries print the paper's exact views; this binary
//! is the downstream-user tool — pick any algorithm/workload/network and
//! get the full trajectory as CSV for your own plotting.
//!
//! ```sh
//! cargo run -p saps-bench --release --bin run_experiment -- \
//!     --algo saps --workload mnist --workers 32 --c 10 \
//!     --rounds 200 --network random --seed 42 > run.csv
//! ```
//!
//! Options:
//! * `--algo` — saps | psgd | topk | fedavg | sfedavg | dpsgd | dcd | random
//! * `--workload` — mnist | cifar | resnet
//! * `--network` — constant | random | cities (14 workers, Fig. 1)
//! * `--workers`, `--rounds`, `--epochs`, `--c`, `--seed`, `--eval-every`

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_bench::{build_trainer, AlgoKind, Workload};
use saps_core::sim::{self, RunOptions};
use saps_netsim::{citydata, BandwidthMatrix};

#[derive(Debug)]
struct Args {
    algo: String,
    workload: String,
    network: String,
    workers: usize,
    rounds: usize,
    epochs: f64,
    c: f64,
    seed: u64,
    eval_every: usize,
}

impl Args {
    fn parse() -> Args {
        let mut a = Args {
            algo: "saps".into(),
            workload: "mnist".into(),
            network: "constant".into(),
            workers: 32,
            rounds: 200,
            epochs: f64::INFINITY,
            c: 10.0,
            seed: 42,
            eval_every: 10,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i].as_str();
            let val = argv
                .get(i + 1)
                .unwrap_or_else(|| usage(&format!("missing value for {key}")));
            match key {
                "--algo" => a.algo = val.clone(),
                "--workload" => a.workload = val.clone(),
                "--network" => a.network = val.clone(),
                "--workers" => a.workers = val.parse().unwrap_or_else(|_| usage("bad --workers")),
                "--rounds" => a.rounds = val.parse().unwrap_or_else(|_| usage("bad --rounds")),
                "--epochs" => a.epochs = val.parse().unwrap_or_else(|_| usage("bad --epochs")),
                "--c" => a.c = val.parse().unwrap_or_else(|_| usage("bad --c")),
                "--seed" => a.seed = val.parse().unwrap_or_else(|_| usage("bad --seed")),
                "--eval-every" => {
                    a.eval_every = val.parse().unwrap_or_else(|_| usage("bad --eval-every"))
                }
                other => usage(&format!("unknown option {other}")),
            }
            i += 2;
        }
        a
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: run_experiment [--algo saps|psgd|topk|fedavg|sfedavg|dpsgd|dcd|random]\n\
         \u{20}                     [--workload mnist|cifar|resnet] [--network constant|random|cities]\n\
         \u{20}                     [--workers N] [--rounds N] [--epochs F] [--c F] [--seed N] [--eval-every N]"
    );
    std::process::exit(2);
}

fn main() {
    let args = Args::parse();
    let workload = Workload::by_name(&args.workload)
        .unwrap_or_else(|| usage(&format!("unknown workload {}", args.workload)));
    let kind = match args.algo.as_str() {
        "saps" => AlgoKind::Saps { c: args.c },
        "psgd" => AlgoKind::Psgd,
        "topk" => AlgoKind::TopK { c: args.c },
        "fedavg" => AlgoKind::FedAvg,
        "sfedavg" => AlgoKind::SFedAvg { c: args.c },
        "dpsgd" => AlgoKind::DPsgd,
        "dcd" => AlgoKind::Dcd { c: args.c },
        "random" => AlgoKind::RandomChoose { c: args.c },
        other => usage(&format!("unknown algorithm {other}")),
    };
    let (workers, bw) = match args.network.as_str() {
        "constant" => (args.workers, BandwidthMatrix::constant(args.workers, 1.0)),
        "random" => {
            let mut rng = StdRng::seed_from_u64(args.seed);
            (
                args.workers,
                BandwidthMatrix::uniform_random(args.workers, 5.0, &mut rng),
            )
        }
        "cities" => (citydata::NUM_CITIES, citydata::fig1_bandwidth()),
        other => usage(&format!("unknown network {other}")),
    };

    let (train, val) = workload.dataset(args.seed);
    let mut trainer = build_trainer(kind, &workload, &train, &bw, workers, args.seed);
    eprintln!(
        "# {} on {} — {} workers, N = {}, network = {}",
        trainer.name(),
        workload.name,
        workers,
        trainer.model_len(),
        args.network
    );
    let hist = sim::run(
        trainer.as_mut(),
        &bw,
        &val,
        RunOptions {
            rounds: args.rounds,
            eval_every: args.eval_every,
            eval_samples: 1_000,
            max_epochs: args.epochs,
        },
    );

    println!("round,epoch,val_acc,train_loss,worker_traffic_mb,comm_time_s,link_bw,bottleneck_bw");
    for p in &hist.points {
        println!(
            "{},{:.4},{:.4},{:.5},{:.6},{:.6},{:.4},{:.4}",
            p.round + 1,
            p.epoch,
            p.val_acc,
            p.train_loss,
            p.worker_traffic_mb,
            p.comm_time_s,
            p.link_bandwidth,
            p.bottleneck_bandwidth,
        );
    }
    eprintln!(
        "# final acc {:.2}% | worker traffic {:.4} MB | server {:.4} MB | comm time {:.2} s",
        hist.final_acc * 100.0,
        hist.total_worker_traffic_mb,
        hist.total_server_traffic_mb,
        hist.total_comm_time_s,
    );
}
