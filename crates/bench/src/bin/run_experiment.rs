//! General experiment runner: one algorithm, one workload, CSV output.
//!
//! The figure/table binaries print the paper's exact views; this binary
//! is the downstream-user tool — pick any algorithm/workload/network and
//! get the full trajectory as CSV for your own plotting. The algorithm
//! name goes straight through [`AlgorithmSpec::parse`] and the
//! eight-algorithm registry; the trajectory is streamed by a
//! [`saps_core::CsvSink`] observer as the run progresses.
//!
//! ```sh
//! cargo run -p saps-bench --release --bin run_experiment -- \
//!     --algo saps --workload mnist --workers 32 --c 10 \
//!     --rounds 200 --network random --seed 42 > run.csv
//! ```
//!
//! Options:
//! * `--algo` — saps | psgd | topk | fedavg | sfedavg | dpsgd | dcd | random
//! * `--workload` — mnist | cifar | resnet
//! * `--network` — constant | random | cities (14 workers, Fig. 1)
//! * `--workers`, `--rounds`, `--epochs`, `--seed`, `--eval-every`
//! * `--c F` — compression ratio; omit to use the algorithm's paper
//!   default (SAPS 100, TopK 1000, S-FedAvg 100, DCD 4)
//! * `--target-acc F` — stop early at the first evaluation reaching `F`
//! * `--threads seq|auto|N` — round-engine thread count (default auto;
//!   every setting produces the bit-identical trajectory)
//! * `--time-model analytic|des` — price rounds with the closed-form
//!   formulas (default) or the discrete-event network simulator (5 ms
//!   per-link latency, fair-share contention; see
//!   `docs/NETWORK_SIM.md`) — losses and traffic stay bit-identical
//! * `--driver memory|cluster` — run the algorithm in-memory (default)
//!   or through the `saps-cluster` message-driven runtime, where every
//!   round crosses the wire as serialized `saps-proto` frames
//!   (`docs/PROTOCOL.md`; all eight algorithms). Losses and worker-row
//!   traffic are
//!   bit-identical; round time additionally prices the frame envelopes,
//!   and the control plane lands on the server row.
//! * `--telemetry on|off|<path>` — attach the `saps-telemetry` recorder
//!   (default `on`). The run's trajectory is bit-identical either way
//!   (pinned by `tests/telemetry.rs`); with the recorder on, a round
//!   timing breakdown (p50/p90/p99 of total/compute/comm), resync
//!   reports, and crash-dump counts print to stderr after the run. A
//!   path argument additionally writes the structured event trail as
//!   JSONL to `<path>` and a Prometheus-style metric snapshot to
//!   `<path>.prom` (see `docs/OBSERVABILITY.md`).
//!
//! Besides the CSV on stdout, every run records its round throughput
//! (rounds/sec, threads, algorithm, workload, driver, telemetry flag,
//! on-wire MB) to `BENCH_round_throughput.json` in the working
//! directory — recorder-on and recorder-off rows coexist, so the file
//! carries the recorder-overhead comparison.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_bench::throughput::{self, ThroughputEntry};
use saps_bench::{experiment, registry, AlgorithmSpec, ParallelismPolicy, TimeModel, Workload};
use saps_cluster::{cluster_registry, WireTap};
use saps_core::{CsvSink, Recorder};
use saps_netsim::{citydata, BandwidthMatrix};
use std::path::Path;

#[derive(Debug)]
struct Args {
    algo: String,
    workload: String,
    network: String,
    workers: usize,
    rounds: usize,
    epochs: f64,
    c: Option<f64>,
    seed: u64,
    eval_every: usize,
    target_acc: Option<f32>,
    threads: ParallelismPolicy,
    time_model: TimeModel,
    driver: String,
    telemetry: String,
}

impl Args {
    fn parse() -> Args {
        let mut a = Args {
            algo: "saps".into(),
            workload: "mnist".into(),
            network: "constant".into(),
            workers: 32,
            rounds: 200,
            epochs: f64::INFINITY,
            c: None,
            seed: 42,
            eval_every: 10,
            target_acc: None,
            threads: ParallelismPolicy::Auto,
            time_model: TimeModel::Analytic,
            driver: "memory".into(),
            telemetry: "on".into(),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i].as_str();
            let val = argv
                .get(i + 1)
                .unwrap_or_else(|| usage(&format!("missing value for {key}")));
            match key {
                "--algo" => a.algo = val.clone(),
                "--workload" => a.workload = val.clone(),
                "--network" => a.network = val.clone(),
                "--workers" => a.workers = val.parse().unwrap_or_else(|_| usage("bad --workers")),
                "--rounds" => a.rounds = val.parse().unwrap_or_else(|_| usage("bad --rounds")),
                "--epochs" => a.epochs = val.parse().unwrap_or_else(|_| usage("bad --epochs")),
                "--c" => a.c = Some(val.parse().unwrap_or_else(|_| usage("bad --c"))),
                "--seed" => a.seed = val.parse().unwrap_or_else(|_| usage("bad --seed")),
                "--eval-every" => {
                    a.eval_every = val.parse().unwrap_or_else(|_| usage("bad --eval-every"))
                }
                "--target-acc" => {
                    a.target_acc = Some(val.parse().unwrap_or_else(|_| usage("bad --target-acc")))
                }
                "--threads" => {
                    a.threads =
                        throughput::parse_policy(val).unwrap_or_else(|| usage("bad --threads"))
                }
                "--time-model" => {
                    a.time_model = match val.as_str() {
                        "analytic" => TimeModel::Analytic,
                        "des" => TimeModel::EventDriven {
                            latency: saps_bench::commtime::DES_DEFAULT_LATENCY_S,
                            contention: true,
                        },
                        _ => usage("bad --time-model (use analytic|des)"),
                    }
                }
                "--driver" => {
                    a.driver = match val.as_str() {
                        "memory" | "cluster" => val.clone(),
                        _ => usage("bad --driver (use memory|cluster)"),
                    }
                }
                "--telemetry" => a.telemetry = val.clone(),
                other => usage(&format!("unknown option {other}")),
            }
            i += 2;
        }
        a
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: run_experiment [--algo saps|psgd|topk|fedavg|sfedavg|dpsgd|dcd|random]\n\
         \u{20}                     [--workload mnist|cifar|resnet] [--network constant|random|cities]\n\
         \u{20}                     [--workers N] [--rounds N] [--epochs F] [--c F] [--seed N]\n\
         \u{20}                     [--eval-every N] [--target-acc F] [--threads seq|auto|N]\n\
         \u{20}                     [--time-model analytic|des] [--driver memory|cluster]\n\
         \u{20}                     [--telemetry on|off|<path>]"
    );
    std::process::exit(2);
}

fn main() {
    let args = Args::parse();
    let workload = Workload::by_name(&args.workload)
        .unwrap_or_else(|| usage(&format!("unknown workload {}", args.workload)));
    let mut spec = AlgorithmSpec::parse(&args.algo).unwrap_or_else(|e| usage(&e.to_string()));
    if let Some(c) = args.c {
        spec = spec.with_compression(c);
    }
    let (workers, bw) = match args.network.as_str() {
        "constant" => (args.workers, BandwidthMatrix::constant(args.workers, 1.0)),
        "random" => {
            let mut rng = StdRng::seed_from_u64(args.seed);
            (
                args.workers,
                BandwidthMatrix::uniform_random(args.workers, 5.0, &mut rng),
            )
        }
        "cities" => (citydata::NUM_CITIES, citydata::fig1_bandwidth()),
        other => usage(&format!("unknown network {other}")),
    };

    // The cluster registry covers every algorithm key (SAPS plus the
    // seven wire baselines), so any --algo runs under either driver.
    let tap = WireTap::new();
    let reg = match args.driver.as_str() {
        "cluster" => cluster_registry(tap.clone()),
        _ => registry(),
    };

    let recorder = if args.telemetry == "off" {
        Recorder::disabled()
    } else {
        Recorder::new()
    };
    let mut exp = experiment(spec, &workload, &bw, workers, args.seed)
        .rounds(args.rounds)
        .eval_every(args.eval_every)
        .eval_samples(1_000)
        .max_epochs(args.epochs)
        .parallelism(args.threads)
        .time_model(args.time_model)
        .telemetry(recorder.clone())
        .observer(Box::new(CsvSink::new(std::io::stdout())));
    if let Some(t) = args.target_acc {
        exp = exp.target_accuracy(t);
    }
    eprintln!(
        "# {} on {} — {} workers, network = {}, {} thread(s), {} driver",
        spec.label(),
        workload.name,
        workers,
        args.network,
        args.threads.resolve(),
        args.driver,
    );
    let hist = exp.run(&reg).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    let wire = tap.snapshot();
    // Cluster runs report the bytes actually framed on the wire; memory
    // runs carry the accountant's logical byte total forward — the tap
    // sees nothing when no wire exists, and 0 would misread as "free".
    let entry = ThroughputEntry::from_run(&hist, workload.name, workers, args.threads);
    let wire_mb = if args.driver == "cluster" {
        wire.total_bytes as f64 / 1e6
    } else {
        entry.wire_mb
    };
    let entry = entry
        .with_driver(&args.driver, wire_mb)
        .with_telemetry(recorder.is_enabled());
    eprintln!(
        "# final acc {:.2}% | worker traffic {:.4} MB | server {:.4} MB | comm time {:.2} s | {:.2} rounds/s wall",
        hist.final_acc * 100.0,
        hist.total_worker_traffic_mb,
        hist.total_server_traffic_mb,
        hist.total_comm_time_s,
        entry.rounds_per_sec,
    );
    if args.driver == "cluster" {
        eprintln!(
            "# on the wire: {:.4} MB total ({:.4} MB payload values, {:.4} MB control plane, {:.4} MB model plane)",
            wire.total_bytes as f64 / 1e6,
            wire.data_bytes as f64 / 1e6,
            wire.control_bytes as f64 / 1e6,
            wire.model_bytes as f64 / 1e6,
        );
    }
    if recorder.is_enabled() {
        report_telemetry(&recorder, &args.telemetry);
    }
    let path = Path::new(throughput::BENCH_FILE);
    match throughput::record(path, &[entry]) {
        Ok(()) => eprintln!("# round throughput recorded to {}", path.display()),
        Err(e) => eprintln!("# warning: could not write {}: {e}", path.display()),
    }
}

/// Prints the recorder's round-timing breakdown, resync reports, and
/// failure-dump counts to stderr; a path-valued `--telemetry` also
/// writes the JSONL event trail and a Prometheus snapshot to disk.
fn report_telemetry(recorder: &Recorder, dest: &str) {
    let pct = |name: &str| {
        let q = |q| recorder.quantile(name, q).unwrap_or(0.0);
        (q(0.50), q(0.90), q(0.99))
    };
    for (label, metric) in [
        ("round total", "round.total_s"),
        ("  compute", "round.compute_s"),
        ("  comm", "round.comm_s"),
    ] {
        let (p50, p90, p99) = pct(metric);
        eprintln!("# {label:<12} p50 {p50:.6} s | p90 {p90:.6} s | p99 {p99:.6} s");
    }
    if let Some(rt) = recorder.counter("net.retransmit_segments") {
        eprintln!(
            "# packet model: {rt} retransmitted segments, peak queue {:.0} bytes",
            recorder.gauge("net.peak_queue_bytes").unwrap_or(0.0),
        );
    }
    for ev in recorder.events() {
        if ev.kind == "resync" || ev.kind == "resync.failed" || ev.kind == "chunk.catchup" {
            eprintln!("# {}", ev.to_json());
        }
    }
    let dumps = recorder.dumps();
    if !dumps.is_empty() {
        eprintln!("# {} flight-recorder dump(s):", dumps.len());
        for d in &dumps {
            eprintln!(
                "#   {} at vtime {:.3} s ({} events)",
                d.reason,
                d.vtime_s,
                d.events.len()
            );
        }
    }
    if dest != "on" {
        let path = Path::new(dest);
        let prom = path.with_extension(match path.extension().and_then(|e| e.to_str()) {
            Some(ext) => format!("{ext}.prom"),
            None => "prom".to_string(),
        });
        match recorder.write_jsonl(path) {
            Ok(()) => eprintln!("# telemetry events written to {}", path.display()),
            Err(e) => eprintln!("# warning: could not write {}: {e}", path.display()),
        }
        match recorder.write_prometheus(&prom) {
            Ok(()) => eprintln!("# metric snapshot written to {}", prom.display()),
            Err(e) => eprintln!("# warning: could not write {}: {e}", prom.display()),
        }
    }
}
