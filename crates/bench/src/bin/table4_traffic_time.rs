//! Table IV: communication traffic (MB) and time (s) at reaching the
//! target accuracy, with bandwidth included, 32 workers.
//!
//! Two parts:
//! 1. **measured** — runs the scaled workloads to their target accuracy
//!    over the 32-worker random-bandwidth network and reports measured
//!    traffic and time per algorithm;
//! 2. **full-size projection** — combines each algorithm's measured
//!    rounds-to-target with Table I's traffic formulas at the paper's
//!    full model sizes, reproducing Table IV's magnitudes.
//!
//! "At reaching" uses [`saps_core::experiment::RunHistory::first_reaching`],
//! which only matches *freshly evaluated* points — rounds between
//! evaluations carry the last measured accuracy and must not be credited
//! with the crossing.
//!
//! ```sh
//! cargo run -p saps-bench --release --bin table4_traffic_time [mnist|cifar|resnet]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_bench::{paper_lineup, run_algorithms, table, AlgorithmSpec, Workload};
use saps_netsim::BandwidthMatrix;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workloads: Vec<Workload> = match args.first().map(String::as_str) {
        Some(name) => vec![Workload::by_name(name).unwrap_or_else(|| {
            eprintln!("unknown workload {name}; use mnist|cifar|resnet");
            std::process::exit(2);
        })],
        None => Workload::all(),
    };
    let workers = 32;
    let mut rng = StdRng::seed_from_u64(7);
    let bw = BandwidthMatrix::uniform_random(workers, 5.0, &mut rng);

    for w in &workloads {
        println!(
            "\n=== Table IV ({}, target {:.0}%): measured on the scaled workload ===\n",
            w.name,
            w.target_acc * 100.0
        );
        let kinds = paper_lineup(w.c_scale, Some(bw.percentile(0.6)));
        let hists = run_algorithms(&kinds, w, &bw, workers, 42, |e| {
            e.rounds(w.default_rounds)
                .eval_every((w.default_rounds / 40).max(1))
                .eval_samples(1_000)
                .max_epochs(w.epochs)
        });

        let mut rows = Vec::new();
        let mut projection_rows = Vec::new();
        for (kind, h) in kinds.iter().zip(&hists) {
            match h.first_reaching(w.target_acc) {
                Some(p) => {
                    rows.push(vec![
                        h.algorithm.clone(),
                        format!("{:.3}", p.worker_traffic_mb),
                        format!("{:.2}", p.comm_time_s),
                        format!("{}", p.round + 1),
                    ]);
                    projection_rows.push((kind, h, p.round + 1));
                }
                None => rows.push(vec![
                    h.algorithm.clone(),
                    format!("- (final {:.1}%)", h.final_acc * 100.0),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
        table::print_table(&["Algorithm", "Traffic (MB)", "Time (s)", "Rounds"], &rows);

        // Full-size projection: rounds-to-target × Table I per-round cost
        // at the paper's N, over the same bandwidth distribution (mean
        // effective bandwidth measured from the run).
        println!(
            "\nfull-size projection at N = {} ({}):",
            table::thousands(w.paper_params as f64),
            w.paper_model
        );
        let mut rows = Vec::new();
        for (kind, h, rounds) in projection_rows {
            let per_round_params: f64 = match kind {
                AlgorithmSpec::Saps { .. } => 2.0 * w.paper_params as f64 / 100.0,
                AlgorithmSpec::Psgd => 2.0 * w.paper_params as f64,
                AlgorithmSpec::TopK { .. } => 2.0 * workers as f64 * w.paper_params as f64 / 1000.0,
                AlgorithmSpec::FedAvg { .. } => 2.0 * w.paper_params as f64,
                AlgorithmSpec::SFedAvg { .. } => (1.0 + 2.0 / 100.0) * w.paper_params as f64,
                AlgorithmSpec::DPsgd => 4.0 * w.paper_params as f64,
                AlgorithmSpec::DcdPsgd { .. } => 4.0 * w.paper_params as f64 / 4.0,
                AlgorithmSpec::RandomChoose { .. } => 2.0 * w.paper_params as f64 / 100.0,
            };
            let traffic_mb = per_round_params * 4.0 * rounds as f64 / 1e6;
            // Effective bandwidth: measured traffic over measured time.
            let eff_bw = if h.total_comm_time_s > 0.0 {
                h.total_worker_traffic_mb / h.total_comm_time_s
            } else {
                f64::INFINITY
            };
            let time_s = traffic_mb / eff_bw;
            rows.push(vec![
                h.algorithm.clone(),
                table::mb(traffic_mb * 1e6),
                format!("{time_s:.0}"),
            ]);
        }
        table::print_table(&["Algorithm", "Traffic (MB)", "Time (s)"], &rows);
        println!(
            "\ncompare with the paper's Table IV column for {}: SAPS-PSGD should \
             show the smallest traffic and time, decentralized dense (D-PSGD) the largest.",
            w.paper_model
        );
    }
}
