//! Ablation: peer-selection strategy (DESIGN.md `ablation_topology`).
//!
//! Compares four ways to pick peers each round on the 14-city and the
//! 32-worker environments:
//!
//! * **Algorithm 3** (the paper): blossom matching on the thresholded
//!   graph `B*` with RC-window bridging;
//! * **GreedyWeight** (our extension): heaviest-link-first greedy
//!   matching with the same bridging;
//! * **RandomChoose**: uniformly random perfect matchings;
//! * **fixed ring**: the D-PSGD topology.
//!
//! Reports mean selected bandwidth, bottleneck bandwidth and the spectral
//! ρ of each stream — the bandwidth/mixing trade-off in one table.
//!
//! ```sh
//! cargo run -p saps-bench --release --bin ablation_peer_strategy
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_bench::table;
use saps_core::GossipGenerator;
use saps_gossip::{spectral, GossipMatrix};
use saps_graph::{topology, Graph, Matching};
use saps_netsim::{citydata, BandwidthMatrix};

const ROUNDS: usize = 400;
const RHO_ROUNDS: usize = 2_000;

fn main() {
    println!("=== Peer-selection strategy ablation ===");
    println!("\n--- 14-worker (Fig. 1 bandwidths) ---");
    run_env(&citydata::fig1_bandwidth(), 1);
    println!("\n--- 32-worker (uniform (0, 5] MB/s) ---");
    let mut rng = StdRng::seed_from_u64(7);
    run_env(&BandwidthMatrix::uniform_random(32, 5.0, &mut rng), 2);
}

fn run_env(bw: &BandwidthMatrix, seed: u64) {
    let n = bw.len();
    let weights = bw.as_slice().to_vec();
    let full = Graph::from_threshold(n, &weights, f64::MIN_POSITIVE);
    let thres = bw.percentile(0.6);
    let bstar = Graph::from_adjacency(n, &bw.threshold(thres));

    let mut rows = Vec::new();

    // Algorithm 3.
    {
        let mut g = GossipGenerator::new(bstar.clone(), full.clone(), 8);
        let mut rng = StdRng::seed_from_u64(seed);
        let stats = stream_stats(n, &weights, |t, rng_| g.next_matching(t, rng_), &mut rng);
        let mut g = GossipGenerator::new(bstar.clone(), full.clone(), 8);
        let mut rng = StdRng::seed_from_u64(seed + 10);
        let rho = spectral::estimate_rho(n, RHO_ROUNDS, |t| {
            GossipMatrix::from_matching(&g.next_matching(t as u64, &mut rng))
        });
        rows.push(make_row("Algorithm 3 (paper)", stats, rho));
    }

    // GreedyWeight extension.
    {
        let mut g = GossipGenerator::with_greedy_weights(full.clone(), weights.clone(), 8);
        let mut rng = StdRng::seed_from_u64(seed);
        let stats = stream_stats(n, &weights, |t, rng_| g.next_matching(t, rng_), &mut rng);
        let mut g = GossipGenerator::with_greedy_weights(full.clone(), weights.clone(), 8);
        let mut rng = StdRng::seed_from_u64(seed + 10);
        let rho = spectral::estimate_rho(n, RHO_ROUNDS, |t| {
            GossipMatrix::from_matching(&g.next_matching(t as u64, &mut rng))
        });
        rows.push(make_row("GreedyWeight (extension)", stats, rho));
    }

    // RandomChoose.
    {
        let even = n - n % 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let stats = stream_stats(
            n,
            &weights,
            |_, rng_| topology::random_perfect_matching(even, rng_),
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(seed + 10);
        let rho = spectral::estimate_rho(even, RHO_ROUNDS, |_| {
            GossipMatrix::from_matching(&topology::random_perfect_matching(even, &mut rng))
        });
        rows.push(make_row("RandomChoose", stats, rho));
    }

    // Fixed ring (for reference; not a matching, mixing is by the lazy
    // three-way average, so rho is reported as the ring walk's value).
    {
        let ring = topology::ring_edges(n);
        let mean: f64 = ring.iter().map(|&(a, b)| bw.get(a, b)).sum::<f64>() / ring.len() as f64;
        let min = topology::edges_min_weight(&ring, n, &weights);
        // Lazy ring walk on n nodes: lambda2 = 1/3 + (2/3)cos(2π/n).
        let rho = 1.0 / 3.0 + (2.0 / 3.0) * (2.0 * std::f64::consts::PI / n as f64).cos();
        rows.push(vec![
            "fixed ring (D-PSGD)".into(),
            format!("{mean:.3}"),
            format!("{min:.3}"),
            format!("{rho:.4}"),
        ]);
    }

    table::print_table(
        &[
            "strategy",
            "mean link [MB/s]",
            "bottleneck [MB/s]",
            "rho (lower = faster mixing)",
        ],
        &rows,
    );
}

/// Mean and bottleneck bandwidth of a matching stream.
fn stream_stats<F>(n: usize, weights: &[f64], mut next: F, rng: &mut StdRng) -> (f64, f64)
where
    F: FnMut(u64, &mut StdRng) -> Matching,
{
    let mut mean = 0.0;
    let mut bottleneck = 0.0;
    for t in 0..ROUNDS {
        let m = next(t as u64, rng);
        mean += topology::matching_avg_weight(&m, n, weights);
        let min = topology::edges_min_weight(&m.pairs(), n, weights);
        bottleneck += if min.is_finite() { min } else { 0.0 };
    }
    (mean / ROUNDS as f64, bottleneck / ROUNDS as f64)
}

fn make_row(name: &str, (mean, min): (f64, f64), rho: f64) -> Vec<String> {
    vec![
        name.into(),
        format!("{mean:.3}"),
        format!("{min:.3}"),
        format!("{rho:.4}"),
    ]
}
