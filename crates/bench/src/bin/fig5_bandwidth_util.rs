//! Fig. 5: bandwidth utilization under two emulated environments —
//! 14 workers with the Fig. 1 city bandwidths, and 32 workers with
//! uniformly random bandwidths in (0, 5] MB/s.
//!
//! For each algorithm prints the per-iteration *effective* bandwidth
//! (the bottleneck link of the links used that round) over the first 400
//! iterations, plus mean-link and bottleneck summaries. The D-PSGD /
//! DCD-PSGD ring value is averaged over many random bandwidth matrices
//! with the fixed order 1 → 2 → … → n → 1, following Section IV-D.
//!
//! ```sh
//! cargo run -p saps-bench --release --bin fig5_bandwidth_util [--ablation]
//! ```
//!
//! `--ablation` additionally sweeps `T_thres` to show the bandwidth /
//! mixing trade-off (DESIGN.md's `ablation_tthres`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_bench::table;
use saps_core::GossipGenerator;
use saps_gossip::{spectral, GossipMatrix};
use saps_graph::{topology, Graph};
use saps_netsim::{citydata, BandwidthMatrix};

const ITERATIONS: usize = 400;

fn main() {
    let ablation = std::env::args().any(|a| a == "--ablation");

    println!("=== Fig. 5(a): 14-worker environment (Fig. 1 bandwidths) ===");
    let bw14 = citydata::fig1_bandwidth();
    environment(&bw14, 14, 1);

    println!("\n=== Fig. 5(b): 32-worker environment (uniform (0, 5] MB/s) ===");
    let mut rng = StdRng::seed_from_u64(7);
    let bw32 = BandwidthMatrix::uniform_random(32, 5.0, &mut rng);
    environment(&bw32, 32, 2);

    if ablation {
        tthres_ablation(&bw14, 14);
    }
}

/// Per-iteration selected-link bandwidth for SAPS, RandomChoose and the
/// D-PSGD ring (averaged over 5000 random matrices as the paper does for
/// its ring baseline).
fn environment(bw: &BandwidthMatrix, n: usize, seed: u64) {
    let weights = bw.as_slice();

    // SAPS-PSGD: Algorithm 3 over B* (60th-percentile threshold).
    let thres = bw.percentile(0.6);
    let bstar = Graph::from_adjacency(n, &bw.threshold(thres));
    let full = Graph::from_threshold(n, weights, f64::MIN_POSITIVE);
    let mut generator = GossipGenerator::new(bstar, full, 8);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut saps_series = Vec::with_capacity(ITERATIONS);
    for t in 0..ITERATIONS {
        let m = generator.next_matching(t as u64, &mut rng);
        saps_series.push((
            topology::matching_avg_weight(&m, n, weights),
            topology::edges_min_weight(&m.pairs(), n, weights),
        ));
    }

    // RandomChoose: uniformly random perfect matchings.
    let mut rand_series = Vec::with_capacity(ITERATIONS);
    for _ in 0..ITERATIONS {
        let m = topology::random_perfect_matching(n - n % 2, &mut rng);
        rand_series.push((
            topology::matching_avg_weight(&m, n - n % 2, weights),
            topology::edges_min_weight(&m.pairs(), n, weights),
        ));
    }

    // D-PSGD / DCD-PSGD ring, Section IV-D style: the fixed-order ring
    // evaluated over 5000 random bandwidth matrices of the same
    // distribution (for the city matrix the ring is just the city order).
    let ring = topology::ring_edges(n);
    let ring_mean: f64 = ring.iter().map(|&(a, b)| bw.get(a, b)).sum::<f64>() / ring.len() as f64;
    let ring_min = topology::edges_min_weight(&ring, n, weights);
    let mut ring_avg_of_random = 0.0;
    let trials = 5_000;
    let mut rrng = StdRng::seed_from_u64(seed + 100);
    for _ in 0..trials {
        let rbw = BandwidthMatrix::uniform_random(n, 5.0, &mut rrng);
        ring_avg_of_random += topology::edges_min_weight(&ring, n, rbw.as_slice());
    }
    ring_avg_of_random /= trials as f64;

    // Print a down-sampled per-iteration series (bottleneck bandwidth).
    let series: Vec<(f64, f64)> = saps_series
        .iter()
        .enumerate()
        .map(|(t, &(_, min))| (t as f64, min))
        .collect();
    table::print_series(
        "SAPS-PSGD per-iteration bottleneck bandwidth",
        "iteration",
        "bandwidth [MB/s]",
        &table::downsample(&series, 10),
    );

    let mean_of = |s: &[(f64, f64)], idx: usize| -> f64 {
        s.iter()
            .map(|p| if idx == 0 { p.0 } else { p.1 })
            .sum::<f64>()
            / s.len() as f64
    };
    let rows = vec![
        vec![
            "SAPS-PSGD".to_string(),
            format!("{:.3}", mean_of(&saps_series, 0)),
            format!("{:.3}", mean_of(&saps_series, 1)),
        ],
        vec![
            "RandomChoose".to_string(),
            format!("{:.3}", mean_of(&rand_series, 0)),
            format!("{:.3}", mean_of(&rand_series, 1)),
        ],
        vec![
            "D-PSGD/DCD-PSGD (this ring)".to_string(),
            format!("{ring_mean:.3}"),
            format!("{ring_min:.3}"),
        ],
        vec![
            "D-PSGD ring (5000 random B)".to_string(),
            "-".to_string(),
            format!("{ring_avg_of_random:.3}"),
        ],
    ];
    println!();
    table::print_table(
        &["peer selection", "mean link [MB/s]", "bottleneck [MB/s]"],
        &rows,
    );
}

/// T_thres sweep: smaller windows force more bridging rounds (better
/// mixing, lower rho) but spend more rounds off the fast links.
fn tthres_ablation(bw: &BandwidthMatrix, n: usize) {
    println!("\n=== Ablation: T_thres vs bandwidth and rho (14-worker env) ===\n");
    let weights = bw.as_slice();
    let thres = bw.percentile(0.6);
    let mut rows = Vec::new();
    for tthres in [2u32, 4, 8, 16, 32] {
        let bstar = Graph::from_adjacency(n, &bw.threshold(thres));
        let full = Graph::from_threshold(n, weights, f64::MIN_POSITIVE);
        let mut generator = GossipGenerator::new(bstar, full, tthres);
        let mut rng = StdRng::seed_from_u64(3);
        let mut mean_bw = 0.0;
        for t in 0..ITERATIONS {
            let m = generator.next_matching(t as u64, &mut rng);
            mean_bw += topology::matching_avg_weight(&m, n, weights);
        }
        mean_bw /= ITERATIONS as f64;

        let bstar = Graph::from_adjacency(n, &bw.threshold(thres));
        let full = Graph::from_threshold(n, weights, f64::MIN_POSITIVE);
        let mut generator = GossipGenerator::new(bstar, full, tthres);
        let mut rng = StdRng::seed_from_u64(4);
        let rho = spectral::estimate_rho(n, 2_000, |t| {
            GossipMatrix::from_matching(&generator.next_matching(t as u64, &mut rng))
        });
        rows.push(vec![
            tthres.to_string(),
            format!("{mean_bw:.3}"),
            format!("{rho:.4}"),
            format!("{:.4}", spectral::spectral_gap(rho)),
        ]);
    }
    table::print_table(
        &["T_thres", "mean selected bw [MB/s]", "rho", "spectral gap"],
        &rows,
    );
    println!(
        "\nsmaller T_thres => more bridging => faster consensus (bigger gap) but \
         lower average bandwidth; the paper's choice balances the two."
    );
}
