//! Serving-plane benchmark recording: `BENCH_serving.json`.
//!
//! The `bench_serving` binary measures the `saps-serve` inference plane
//! — requests per wall-clock second and request-latency percentiles per
//! replica count, plus the mixed training + serving scenario where both
//! planes share one `citydata` bandwidth matrix and the serving
//! transfers are priced by the same `TimeModel`s as the training round.
//! Like the round-throughput record, the file is plain JSON written by
//! hand (no serde in the dependency-free build), one entry per line,
//! stable enough to diff across commits.

use std::io::{self, Write};
use std::path::Path;

/// Canonical output file name, written to the working directory.
pub const SERVING_FILE: &str = "BENCH_serving.json";

/// One measured serving configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingEntry {
    /// Scenario: `"serve-only"` or `"mixed-training"`.
    pub scenario: String,
    /// Replica fleet size.
    pub replicas: usize,
    /// Resolved executor thread count.
    pub threads: usize,
    /// Requests completed.
    pub requests: usize,
    /// Requests completed per wall-clock second.
    pub requests_per_sec: f64,
    /// Median request latency, wall-clock milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, wall-clock milliseconds.
    pub p99_ms: f64,
    /// Serving bytes framed on the wire, MB.
    pub serve_mb: f64,
    /// Hot swaps accepted across the fleet (mixed scenario; 0 when no
    /// training runs alongside).
    pub swaps: u64,
    /// Simulated seconds to move one round's *combined* training +
    /// serving transfers over the shared bandwidth matrix, under the
    /// fluid (analytic) model. 0 for serve-only runs, which are not
    /// priced.
    pub fluid_round_s: f64,
    /// The same combined round priced by the packet-level simulator.
    pub packet_round_s: f64,
}

/// Overwrites the record at `path` with `entries`.
///
/// Unlike round throughput — accumulated across many binaries — the
/// serving record is produced by one binary in one sweep, so the
/// simplest correct policy is rewrite-from-scratch.
pub fn write_json(path: &Path, entries: &[ServingEntry]) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    write!(f, "{}", render_json(entries))?;
    f.flush()
}

fn render_json(entries: &[ServingEntry]) -> String {
    let mut out = String::from("{\n  \"bench\": \"serving\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"replicas\": {}, \"threads\": {}, \
             \"requests\": {}, \"requests_per_sec\": {:.1}, \"p50_ms\": {:.4}, \
             \"p99_ms\": {:.4}, \"serve_mb\": {:.6}, \"swaps\": {}, \
             \"fluid_round_s\": {:.6}, \"packet_round_s\": {:.6}}}{}\n",
            e.scenario,
            e.replicas,
            e.threads,
            e.requests,
            e.requests_per_sec,
            e.p50_ms,
            e.p99_ms,
            e.serve_mb,
            e.swaps,
            e.fluid_round_s,
            e.packet_round_s,
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The `q`-quantile (0 ≤ q ≤ 1) of `samples` by the nearest-rank rule.
/// Returns 0 for an empty slice.
pub fn quantile_ms(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(scenario: &str, replicas: usize) -> ServingEntry {
        ServingEntry {
            scenario: scenario.into(),
            replicas,
            threads: 4,
            requests: 1000,
            requests_per_sec: 5000.0,
            p50_ms: 0.2,
            p99_ms: 1.5,
            serve_mb: 0.25,
            swaps: 0,
            fluid_round_s: 0.0,
            packet_round_s: 0.0,
        }
    }

    #[test]
    fn json_layout_is_stable() {
        let text = render_json(&[entry("serve-only", 2), entry("serve-only", 4)]);
        assert!(text.starts_with("{\n  \"bench\": \"serving\""));
        assert_eq!(text.matches("\"scenario\": \"serve-only\"").count(), 2);
        assert_eq!(text.matches("},\n").count(), 1, "comma between entries");
        assert!(text.contains("\"replicas\": 4"));
        assert!(text.contains("\"p99_ms\": 1.5000"));
        assert!(text.ends_with("  ]\n}\n"));
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let mut v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantile_ms(&mut v, 0.5), 50.0);
        assert_eq!(quantile_ms(&mut v, 0.99), 99.0);
        assert_eq!(quantile_ms(&mut v, 1.0), 100.0);
        let mut one = vec![7.0];
        assert_eq!(quantile_ms(&mut one, 0.99), 7.0);
        assert_eq!(quantile_ms(&mut [], 0.5), 0.0);
    }
}
