//! Shared harness for the paper-reproduction benchmark binaries.
//!
//! Each table/figure of the paper has a binary in `src/bin/` that prints
//! the same rows/series the paper reports. This library holds what they
//! share: the three scaled workloads standing in for MNIST-CNN,
//! CIFAR10-CNN and ResNet-20 (DESIGN.md §6 explains the substitution),
//! the [`experiment`] helper that turns an [`AlgorithmSpec`] + workload
//! into a configured [`Experiment`], and plain-text table helpers.
//!
//! Algorithms are never constructed directly here — everything goes
//! through [`registry`] (re-exported from `saps-baselines`), so adding
//! an algorithm is a registry change, not a 10-binary rewire.

#![warn(missing_docs)]

pub mod commtime;
pub mod serving;
pub mod table;
pub mod throughput;
pub mod workload;

pub use saps_baselines::registry;
pub use saps_core::{AlgorithmSpec, Experiment, ParallelismPolicy, TimeModel};
pub use workload::Workload;

use saps_core::experiment::RunHistory;
use saps_netsim::BandwidthMatrix;

/// A configured [`Experiment`] for one algorithm over one workload: the
/// workload supplies dataset, model factory and hyper-parameters; the
/// caller layers rounds/eval cadence/events on top with the builder's
/// setters.
pub fn experiment(
    spec: AlgorithmSpec,
    workload: &Workload,
    bw: &BandwidthMatrix,
    workers: usize,
    seed: u64,
) -> Experiment {
    let (train, val) = workload.dataset(seed);
    experiment_with_data(spec, workload, train, val, bw, workers, seed)
}

/// [`experiment`] with a pre-generated `(train, val)` split — lets
/// multi-algorithm sweeps generate the workload's dataset once.
pub fn experiment_with_data(
    spec: AlgorithmSpec,
    workload: &Workload,
    train: saps_data::Dataset,
    val: saps_data::Dataset,
    bw: &BandwidthMatrix,
    workers: usize,
    seed: u64,
) -> Experiment {
    Experiment::new(spec)
        .train(train)
        .validation(val)
        .workers(workers)
        .batch_size(workload.batch_size)
        .lr(workload.lr)
        .seed(seed)
        .bandwidth_matrix(bw.clone())
        .model(workload.factory())
}

/// Runs a set of algorithms on one workload over the same bandwidth
/// matrix and validation set (generated once). `configure` layers run
/// settings (rounds, eval cadence, epoch budget, events) onto each
/// experiment.
pub fn run_algorithms(
    specs: &[AlgorithmSpec],
    workload: &Workload,
    bw: &BandwidthMatrix,
    workers: usize,
    seed: u64,
    configure: impl Fn(Experiment) -> Experiment,
) -> Vec<RunHistory> {
    let reg = registry();
    let (train, val) = workload.dataset(seed);
    specs
        .iter()
        .map(|&spec| {
            configure(experiment_with_data(
                spec,
                workload,
                train.clone(),
                val.clone(),
                bw,
                workers,
                seed,
            ))
            .run(&reg)
            .unwrap_or_else(|e| panic!("{} failed to run: {e}", spec.label()))
        })
        .collect()
}

/// The paper's full algorithm line-up with its per-algorithm compression
/// settings (Section IV-A): TopK `c = 1000`, S-FedAvg `c = 100`,
/// DCD `c = 4`, SAPS `c = 100`. Scaled-down models use proportionally
/// smaller `c` so that `N/c` stays meaningful; pass the workload's
/// `c_scale` to shrink them uniformly. `saps_bthres` is SAPS-PSGD's
/// `B_thres`; the figure binaries pass the 60th percentile of their
/// bandwidth matrix (Section IV-D), `None` auto-connects.
pub fn paper_lineup(c_scale: f64, saps_bthres: Option<f64>) -> Vec<AlgorithmSpec> {
    let c = |v: f64| (v / c_scale).max(1.0);
    vec![
        AlgorithmSpec::Psgd,
        AlgorithmSpec::TopK {
            compression: c(1000.0),
        },
        AlgorithmSpec::FedAvg {
            participation: 0.5,
            local_steps: 5,
        },
        AlgorithmSpec::SFedAvg {
            participation: 0.5,
            local_steps: 5,
            compression: c(100.0),
        },
        AlgorithmSpec::DPsgd,
        AlgorithmSpec::DcdPsgd {
            compression: 4.0_f64.min(c(4.0)).max(1.5),
        },
        AlgorithmSpec::Saps {
            compression: c(100.0),
            tthres: 8,
            bthres: saps_bthres,
        },
    ]
}
