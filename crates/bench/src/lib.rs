//! Shared harness for the paper-reproduction benchmark binaries.
//!
//! Each table/figure of the paper has a binary in `src/bin/` that prints
//! the same rows/series the paper reports. This library holds what they
//! share: the three scaled workloads standing in for MNIST-CNN,
//! CIFAR10-CNN and ResNet-20 (DESIGN.md §6 explains the substitution),
//! a uniform way to construct every algorithm, and plain-text table
//! helpers.

#![warn(missing_docs)]

pub mod table;
pub mod workload;

pub use workload::{AlgoKind, Workload};

use rand::rngs::StdRng;
use saps_core::sim::{self, RunHistory, RunOptions};
use saps_core::Trainer;
use saps_data::Dataset;
use saps_netsim::BandwidthMatrix;

/// Builds the trainer for an algorithm kind over a workload's data.
pub fn build_trainer(
    kind: AlgoKind,
    workload: &Workload,
    train: &Dataset,
    bw: &BandwidthMatrix,
    workers: usize,
    seed: u64,
) -> Box<dyn Trainer> {
    use saps_baselines::*;
    use saps_core::{SapsConfig, SapsPsgd};
    let factory = workload.factory();
    let fleet = || {
        Fleet::new(
            workers,
            train,
            |rng: &mut StdRng| factory(rng),
            seed,
            workload.batch_size,
            workload.lr,
        )
    };
    match kind {
        AlgoKind::Saps { c } => {
            let cfg = SapsConfig {
                workers,
                compression: c,
                lr: workload.lr,
                batch_size: workload.batch_size,
                tthres: 8,
                seed,
                bthres: Some(bw.percentile(0.6)),
            };
            Box::new(SapsPsgd::new(cfg, train, bw, factory))
        }
        AlgoKind::Psgd => Box::new(PsgdAllReduce::new(fleet())),
        AlgoKind::TopK { c } => Box::new(TopKPsgd::new(fleet(), c)),
        AlgoKind::FedAvg => Box::new(FedAvg::new(fleet(), FedAvgConfig::default(), seed)),
        AlgoKind::SFedAvg { c } => Box::new(SFedAvg::new(fleet(), 0.5, 5, c, seed)),
        AlgoKind::DPsgd => Box::new(DPsgd::new(fleet())),
        AlgoKind::Dcd { c } => Box::new(DcdPsgd::new(fleet(), c)),
        AlgoKind::RandomChoose { c } => Box::new(RandomChoose::new(fleet(), c, seed)),
    }
}

/// Runs a set of algorithms on one workload over the same bandwidth
/// matrix and validation set.
pub fn run_algorithms(
    kinds: &[AlgoKind],
    workload: &Workload,
    bw: &BandwidthMatrix,
    workers: usize,
    opts: RunOptions,
    seed: u64,
) -> Vec<RunHistory> {
    let (train, val) = workload.dataset(seed);
    kinds
        .iter()
        .map(|&kind| {
            let mut algo = build_trainer(kind, workload, &train, bw, workers, seed);
            sim::run(algo.as_mut(), bw, &val, opts)
        })
        .collect()
}

/// The paper's full algorithm line-up with its per-algorithm compression
/// settings (Section IV-A): TopK `c = 1000`, S-FedAvg `c = 100`,
/// DCD `c = 4`, SAPS `c = 100`. Scaled-down models use proportionally
/// smaller `c` so that `N/c` stays meaningful; pass the workload's
/// `c_scale` to shrink them uniformly.
pub fn paper_lineup(c_scale: f64) -> Vec<AlgoKind> {
    let c = |v: f64| (v / c_scale).max(1.0);
    vec![
        AlgoKind::Psgd,
        AlgoKind::TopK { c: c(1000.0) },
        AlgoKind::FedAvg,
        AlgoKind::SFedAvg { c: c(100.0) },
        AlgoKind::DPsgd,
        AlgoKind::Dcd {
            c: 4.0_f64.min(c(4.0)).max(1.5),
        },
        AlgoKind::Saps { c: c(100.0) },
    ]
}
