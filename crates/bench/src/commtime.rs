//! Communication-time recording: Fig. 6's machine-readable artifact.
//!
//! `fig6_comm_time` compares the eight algorithms on *communication
//! time*; with the [`saps_core::TimeModel`] switch each run can be
//! priced by the closed-form analytic model or the discrete-event
//! simulator. This module records both, keyed by
//! `(algorithm, workload, workers, time_model)`, into
//! `BENCH_comm_time.json` in the working directory — same hand-rolled
//! JSON convention as [`crate::throughput`] (no serde in the
//! dependency-free build), and merging instead of clobbering so the
//! analytic and DES passes accumulate side by side.

use saps_core::experiment::RunHistory;
use std::io::{self, Write};
use std::path::Path;

/// Canonical output file name, written to the working directory.
pub const BENCH_FILE: &str = "BENCH_comm_time.json";

/// Per-link latency the binaries use for `--time-model des`: 5 ms, a
/// wide-area RTT scale consistent with the paper's geo-distributed
/// setting. One constant so `fig6_comm_time` and `run_experiment`
/// records labeled `"des"` stay comparable.
pub const DES_DEFAULT_LATENCY_S: f64 = 0.005;

/// One priced run: how much simulated communication time an algorithm
/// spent, and when (if ever) it crossed the workload's target accuracy.
#[derive(Debug, Clone, PartialEq)]
pub struct CommTimeEntry {
    /// Algorithm name (paper spelling).
    pub algorithm: String,
    /// Workload display name.
    pub workload: String,
    /// Fleet size `n`.
    pub workers: usize,
    /// Time-model label: `"analytic"` or `"des"`.
    pub time_model: String,
    /// Rounds actually driven.
    pub rounds: usize,
    /// Total simulated communication time (seconds).
    pub comm_time_s: f64,
    /// Simulated communication time at the first evaluation reaching
    /// the target accuracy; negative when the target was never reached.
    pub time_to_target_s: f64,
    /// Final consensus validation accuracy, in `[0, 1]`.
    pub final_acc: f64,
}

impl CommTimeEntry {
    /// Builds an entry from a finished run.
    pub fn from_run(
        hist: &RunHistory,
        workload: &str,
        workers: usize,
        time_model: &str,
        target_acc: f32,
    ) -> Self {
        CommTimeEntry {
            algorithm: hist.algorithm.clone(),
            workload: workload.to_string(),
            workers,
            time_model: time_model.to_string(),
            rounds: hist.points.len(),
            comm_time_s: hist.total_comm_time_s,
            time_to_target_s: hist
                .first_reaching(target_acc)
                .map_or(-1.0, |p| p.comm_time_s),
            final_acc: hist.final_acc as f64,
        }
    }
}

fn key(e: &CommTimeEntry) -> (&str, &str, usize, &str) {
    (&e.algorithm, &e.workload, e.workers, &e.time_model)
}

/// Merges `new_entries` into the record at `path` and rewrites it: an
/// existing entry with the same `(algorithm, workload, workers,
/// time_model)` key is replaced in place, everything else is kept, and
/// new configurations append — so `--time-model=des` runs don't clobber
/// the analytic records (or vice versa). A file in an unrecognized
/// format is rewritten from scratch.
pub fn record(path: &Path, new_entries: &[CommTimeEntry]) -> io::Result<()> {
    let mut entries = read_entries(path).unwrap_or_default();
    for ne in new_entries {
        match entries.iter_mut().find(|e| key(e) == key(ne)) {
            Some(slot) => *slot = ne.clone(),
            None => entries.push(ne.clone()),
        }
    }
    write_json(path, &entries)
}

/// Best-effort parse of a file this module wrote (one entry per line).
/// Returns `None` when the file is missing or any entry line does not
/// parse — callers start a fresh record in that case.
pub fn read_entries(path: &Path) -> Option<Vec<CommTimeEntry>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with("{\"algorithm\"") {
            continue;
        }
        out.push(parse_entry(line)?);
    }
    Some(out)
}

fn parse_entry(line: &str) -> Option<CommTimeEntry> {
    Some(CommTimeEntry {
        algorithm: field_str(line, "algorithm")?,
        workload: field_str(line, "workload")?,
        workers: field_num(line, "workers")?.parse().ok()?,
        time_model: field_str(line, "time_model")?,
        rounds: field_num(line, "rounds")?.parse().ok()?,
        comm_time_s: field_num(line, "comm_time_s")?.parse().ok()?,
        time_to_target_s: field_num(line, "time_to_target_s")?.parse().ok()?,
        final_acc: field_num(line, "final_acc")?.parse().ok()?,
    })
}

/// Reads (and unescapes) the string value of `"name": "…"` in `line`.
fn field_str(line: &str, name: &str) -> Option<String> {
    let pat = format!("\"{name}\": \"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            c => out.push(c),
        }
    }
    None
}

/// Reads the numeric token of `"name": …` in `line`.
fn field_num<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("\"{name}\": ");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim())
}

/// Serializes entries and writes them to `path` (truncate + write, like
/// the throughput record).
pub fn write_json(path: &Path, entries: &[CommTimeEntry]) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    write!(f, "{}", render_json(entries))?;
    f.flush()
}

fn render_json(entries: &[CommTimeEntry]) -> String {
    let mut out = String::from("{\n  \"bench\": \"comm_time\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"workload\": \"{}\", \"workers\": {}, \
             \"time_model\": \"{}\", \"rounds\": {}, \"comm_time_s\": {:.6}, \
             \"time_to_target_s\": {:.6}, \"final_acc\": {:.4}}}{}\n",
            escape(&e.algorithm),
            escape(&e.workload),
            e.workers,
            escape(&e.time_model),
            e.rounds,
            e.comm_time_s,
            e.time_to_target_s,
            e.final_acc,
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(model: &str, t: f64) -> CommTimeEntry {
        CommTimeEntry {
            algorithm: "SAPS-PSGD".into(),
            workload: "MNIST-CNN (scaled)".into(),
            workers: 32,
            time_model: model.into(),
            rounds: 100,
            comm_time_s: t,
            time_to_target_s: t / 2.0,
            final_acc: 0.875,
        }
    }

    #[test]
    fn json_layout_is_stable() {
        let text = render_json(&[entry("analytic", 10.0), entry("des", 12.5)]);
        assert!(text.starts_with("{\n  \"bench\": \"comm_time\""));
        assert!(text.contains("\"time_model\": \"des\""));
        assert_eq!(text.matches("},\n").count(), 1);
        assert!(text.ends_with("  ]\n}\n"));
    }

    #[test]
    fn record_merges_models_instead_of_clobbering() {
        let dir = std::env::temp_dir().join(format!("saps-commtime-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(BENCH_FILE);
        let _ = std::fs::remove_file(&path);

        record(&path, &[entry("analytic", 10.0)]).unwrap();
        record(&path, &[entry("des", 12.5)]).unwrap();
        // A re-measurement of an existing key replaces in place.
        record(&path, &[entry("analytic", 11.0)]).unwrap();

        let got = read_entries(&path).unwrap();
        assert_eq!(got, vec![entry("analytic", 11.0), entry("des", 12.5)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unreached_target_roundtrips_negative() {
        let dir = std::env::temp_dir().join(format!("saps-commtime-neg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(BENCH_FILE);
        let mut e = entry("des", 7.0);
        e.time_to_target_s = -1.0;
        record(&path, &[e.clone()]).unwrap();
        assert_eq!(read_entries(&path).unwrap(), vec![e]);
        std::fs::remove_file(&path).unwrap();
    }
}
