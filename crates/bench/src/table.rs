//! Plain-text table and series printing for the bench binaries.

/// Prints a fixed-width table: a header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |sep: char| {
        let mut s = String::new();
        for w in &widths {
            s.push('+');
            s.extend(std::iter::repeat_n(sep, w + 2));
        }
        s.push('+');
        s
    };
    println!("{}", line('-'));
    let mut h = String::new();
    for (w, cell) in widths.iter().zip(headers) {
        h.push_str(&format!("| {cell:w$} "));
    }
    println!("{h}|");
    println!("{}", line('='));
    for row in rows {
        let mut r = String::new();
        for (w, cell) in widths.iter().zip(row) {
            r.push_str(&format!("| {cell:w$} "));
        }
        println!("{r}|");
    }
    println!("{}", line('-'));
}

/// Formats a byte count as the paper's MB with 3 significant decimals.
pub fn mb(bytes: f64) -> String {
    format!("{:.3}", bytes / 1e6)
}

/// Formats parameters-count style numbers with thousands separators.
pub fn thousands(v: f64) -> String {
    let neg = v < 0.0;
    let mut s = format!("{:.0}", v.abs());
    let mut out = String::new();
    while s.len() > 3 {
        let tail = s.split_off(s.len() - 3);
        out = format!(",{tail}{out}");
    }
    format!("{}{s}{out}", if neg { "-" } else { "" })
}

/// Prints an x/y series as an aligned two-column block with a title —
/// the textual analogue of one curve in a paper figure.
pub fn print_series(title: &str, xlabel: &str, ylabel: &str, points: &[(f64, f64)]) {
    println!("\n# {title}");
    println!("  {xlabel:>14} | {ylabel}");
    for (x, y) in points {
        println!("  {x:>14.4} | {y:.4}");
    }
}

/// Down-samples a series to at most `max_points`, always keeping the
/// first and last point.
pub fn downsample(points: &[(f64, f64)], max_points: usize) -> Vec<(f64, f64)> {
    assert!(max_points >= 2);
    if points.len() <= max_points {
        return points.to_vec();
    }
    let mut out = Vec::with_capacity(max_points);
    let step = (points.len() - 1) as f64 / (max_points - 1) as f64;
    for i in 0..max_points {
        out.push(points[(i as f64 * step).round() as usize]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(0.0), "0");
        assert_eq!(thousands(999.0), "999");
        assert_eq!(thousands(6_653_628.0), "6,653,628");
        assert_eq!(thousands(-1_000.0), "-1,000");
    }

    #[test]
    fn mb_formatting() {
        assert_eq!(mb(5_000_000.0), "5.000");
        assert_eq!(mb(123_456.0), "0.123");
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 0.0)).collect();
        let d = downsample(&pts, 5);
        assert_eq!(d.len(), 5);
        assert_eq!(d[0].0, 0.0);
        assert_eq!(d[4].0, 99.0);
        // Short series pass through untouched.
        assert_eq!(downsample(&pts[..3], 5).len(), 3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn print_table_checks_width() {
        print_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
