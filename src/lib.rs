//! # saps — SAPS-PSGD in Rust
//!
//! A full reproduction of *Communication-Efficient Decentralized Learning
//! with Sparsification and Adaptive Peer Selection* (Tang, Shi, Chu —
//! ICDCS 2020, arXiv:2002.09692), including every substrate the paper
//! depends on and all seven comparison algorithms.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | contents |
//! |--------|----------|
//! | [`core`] | the SAPS-PSGD algorithm, the [`core::Trainer`] interface, the [`core::AlgorithmSpec`] registry, and the [`core::Experiment`] driver |
//! | [`baselines`] | PSGD, TopK-PSGD, FedAvg, S-FedAvg, D-PSGD, DCD-PSGD, RandomChoose, and [`baselines::registry`] (all eight algorithms) |
//! | [`nn`] | the neural-network substrate and the paper's model zoo |
//! | [`data`] | synthetic MNIST/CIFAR-shaped datasets, IID/non-IID partitioners |
//! | [`netsim`] | bandwidth matrices (incl. the paper's Fig. 1 data), dynamics, traffic/time accounting |
//! | [`graph`] | Edmonds' blossom matching, connectivity, topologies |
//! | [`gossip`] | gossip matrices, spectral ρ, consensus simulation |
//! | [`compress`] | shared-seed random masks, top-k + error feedback, codecs |
//! | [`tensor`] | dense tensors and f64 linear algebra |
//! | [`runtime`] | the deterministic multi-threaded round engine ([`runtime::Executor`], [`runtime::ParallelismPolicy`]) |
//! | [`proto`] | the versioned wire protocol (`docs/PROTOCOL.md`): framed round-lifecycle messages with typed decode errors |
//! | [`cluster`] | the message-driven coordinator/worker runtime ([`cluster::ClusterTrainer`], loopback + TCP transports) |
//! | [`serve`] | the inference plane ([`serve::ServeCluster`], [`serve::ReplicaNode`]): replicas serving the consensus model with batched forwards and hot checkpoint swaps |
//! | [`telemetry`] | the unified observability plane (`docs/OBSERVABILITY.md`): the lock-cheap [`telemetry::Recorder`] metric registry, structured events, and the crash flight recorder |
//!
//! ## Quickstart
//!
//! Experiments are declarative: pick an [`core::AlgorithmSpec`], describe
//! the run with the [`core::Experiment`] builder, and run it against the
//! eight-algorithm [`baselines::registry`].
//!
//! ```
//! use saps::baselines::registry;
//! use saps::core::{AlgorithmSpec, Experiment, ScenarioEvent};
//! use saps::data::SyntheticSpec;
//! use saps::netsim::BandwidthMatrix;
//! use saps::nn::zoo;
//!
//! // 8 workers on a uniform-bandwidth network, c = 10 sparsification,
//! // with one worker dropping out mid-run and returning later.
//! let ds = SyntheticSpec::tiny().samples(2_000).generate(42);
//! let (train, val) = ds.split(0.2, 0);
//! let spec = AlgorithmSpec::parse("saps").unwrap().with_compression(10.0);
//! let hist = Experiment::new(spec)
//!     .train(train)
//!     .validation(val)
//!     .workers(8)
//!     .batch_size(32)
//!     .lr(0.1)
//!     .bandwidth_matrix(BandwidthMatrix::constant(8, 1.0))
//!     .model(|rng| zoo::mlp(&[16, 24, 4], rng))
//!     .rounds(50)
//!     .eval_every(10)
//!     .eval_samples(400)
//!     .event(20, ScenarioEvent::WorkerLeave { rank: 7 })
//!     .event(35, ScenarioEvent::WorkerJoin { rank: 7 })
//!     .run(&registry())
//!     .unwrap();
//! assert!(hist.final_acc > 0.25); // beats 4-class chance
//! ```

pub use saps_baselines as baselines;
pub use saps_cluster as cluster;
pub use saps_compress as compress;
pub use saps_core as core;
pub use saps_data as data;
pub use saps_gossip as gossip;
pub use saps_graph as graph;
pub use saps_netsim as netsim;
pub use saps_nn as nn;
pub use saps_proto as proto;
pub use saps_runtime as runtime;
pub use saps_serve as serve;
pub use saps_telemetry as telemetry;
pub use saps_tensor as tensor;
