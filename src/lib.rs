//! # saps — SAPS-PSGD in Rust
//!
//! A full reproduction of *Communication-Efficient Decentralized Learning
//! with Sparsification and Adaptive Peer Selection* (Tang, Shi, Chu —
//! ICDCS 2020, arXiv:2002.09692), including every substrate the paper
//! depends on and all seven comparison algorithms.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | contents |
//! |--------|----------|
//! | [`core`] | the SAPS-PSGD algorithm: coordinator, worker, adaptive peer selection, simulator |
//! | [`baselines`] | PSGD, TopK-PSGD, FedAvg, S-FedAvg, D-PSGD, DCD-PSGD, RandomChoose |
//! | [`nn`] | the neural-network substrate and the paper's model zoo |
//! | [`data`] | synthetic MNIST/CIFAR-shaped datasets, IID/non-IID partitioners |
//! | [`netsim`] | bandwidth matrices (incl. the paper's Fig. 1 data), traffic/time accounting |
//! | [`graph`] | Edmonds' blossom matching, connectivity, topologies |
//! | [`gossip`] | gossip matrices, spectral ρ, consensus simulation |
//! | [`compress`] | shared-seed random masks, top-k + error feedback, codecs |
//! | [`tensor`] | dense tensors and f64 linear algebra |
//!
//! ## Quickstart
//!
//! ```
//! use saps::core::{SapsConfig, SapsPsgd, sim};
//! use saps::data::SyntheticSpec;
//! use saps::netsim::BandwidthMatrix;
//! use saps::nn::zoo;
//!
//! // 8 workers on a uniform-bandwidth network, c = 10 sparsification.
//! let ds = SyntheticSpec::tiny().samples(2_000).generate(42);
//! let (train, val) = ds.split(0.2, 0);
//! let bw = BandwidthMatrix::constant(8, 1.0);
//! let cfg = SapsConfig {
//!     workers: 8,
//!     compression: 10.0,
//!     lr: 0.1,
//!     batch_size: 32,
//!     ..SapsConfig::default()
//! };
//! let mut algo = SapsPsgd::new(cfg, &train, &bw, |rng| zoo::mlp(&[16, 24, 4], rng));
//! let hist = sim::run(&mut algo, &bw, &val, sim::RunOptions {
//!     rounds: 50,
//!     eval_every: 10,
//!     eval_samples: 400,
//!     max_epochs: f64::INFINITY,
//! });
//! assert!(hist.final_acc > 0.25); // beats 4-class chance
//! ```

pub use saps_baselines as baselines;
pub use saps_compress as compress;
pub use saps_core as core;
pub use saps_data as data;
pub use saps_gossip as gossip;
pub use saps_graph as graph;
pub use saps_netsim as netsim;
pub use saps_nn as nn;
pub use saps_tensor as tensor;
